"""Resilience primitives: backoff, circuit breaking, deadlines, admission.

Four small, independently testable pieces the serving stack composes into
its failure-handling story (``docs/RESILIENCE.md``):

:class:`BackoffPolicy`
    Exponential backoff with *decorrelated jitter*: each delay is drawn
    uniformly from ``[base, prev * multiplier]`` and clamped to ``cap``, so
    retry storms decorrelate across clients while every schedule stays
    within ``[base, cap]``.  Seeded — a fixed seed replays the exact delay
    sequence (the chaos drill and the hypothesis suite both rely on this).
:class:`CircuitBreaker`
    The classic closed → open → half-open machine, per worker in the
    router: ``failure_threshold`` consecutive failures trip it open, after
    ``recovery_time`` it admits up to ``half_open_max_probes`` probe
    requests, one probe success recloses it, one probe failure re-opens.
    ``try_acquire`` is the only mutating admission call (probe slots are
    accounted); every acquire must be matched by ``record_success`` or
    ``record_failure``.
:class:`Deadline`
    An absolute wall-clock budget carried end to end: the client stamps
    ``X-DPSC-Deadline`` (:data:`DEADLINE_HEADER`) with ``time.time() +
    timeout``, the router refuses or stops retrying past it, and workers
    refuse already-expired work with 504 instead of computing answers
    nobody is waiting for.  Wall clock, not monotonic, because the value
    crosses process boundaries (localhost tiers share one clock; see
    docs/RESILIENCE.md for the skew caveat).
:class:`AdmissionGate`
    A bounded in-flight counter for load shedding: ``try_enter`` fails once
    ``limit`` requests are in flight, and the router turns that into
    ``503 + Retry-After`` instead of queueing unboundedly.

:func:`call_with_retries` is the retry loop the scheduler (and anything
else with a transient-exception contract) reuses: seeded backoff between
attempts, never retrying exception types outside ``transient`` —
:class:`~repro.exceptions.BudgetExceededError` in particular must always
propagate, a refused privacy charge is not a transient fault.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Iterator

__all__ = [
    "DEADLINE_HEADER",
    "BackoffPolicy",
    "CircuitBreaker",
    "Deadline",
    "AdmissionGate",
    "call_with_retries",
]

#: the deadline header: an absolute ``time.time()`` float, stamped by the
#: client and propagated router -> worker.
DEADLINE_HEADER = "X-DPSC-Deadline"


class BackoffPolicy:
    """Decorrelated-jitter exponential backoff (seeded, replayable)."""

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 2.0,
        multiplier: float = 3.0,
    ) -> None:
        if base <= 0:
            raise ValueError("backoff 'base' must be > 0")
        if cap < base:
            raise ValueError("backoff 'cap' must be >= 'base'")
        if multiplier < 1.0:
            raise ValueError("backoff 'multiplier' must be >= 1")
        self.base = float(base)
        self.cap = float(cap)
        self.multiplier = float(multiplier)

    def iter_delays(self, seed: object) -> Iterator[float]:
        """An endless delay sequence for one request, deterministic in
        ``seed``.  Every delay lies in ``[base, cap]`` and the running cap
        grows at most geometrically (``prev * multiplier``)."""
        rng = random.Random(f"backoff|{seed}")
        prev = self.base
        while True:
            delay = min(self.cap, rng.uniform(self.base, max(self.base, prev * self.multiplier)))
            prev = delay
            yield delay

    def schedule(self, seed: object, attempts: int) -> list[float]:
        """The first ``attempts`` delays of :meth:`iter_delays`."""
        delays = self.iter_delays(seed)
        return [next(delays) for _ in range(attempts)]


class CircuitBreaker:
    """Closed → open → half-open breaker with probe accounting.

    ``clock`` is injectable for deterministic state-machine tests.  Every
    ``try_acquire() == True`` must be paired with exactly one
    ``record_success``/``record_failure`` — in half-open state the acquire
    takes a probe slot that only the matching record releases.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"
    _STATE_CODES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        recovery_time: float = 1.0,
        half_open_max_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("'failure_threshold' must be >= 1")
        if recovery_time < 0:
            raise ValueError("'recovery_time' must be >= 0")
        if half_open_max_probes < 1:
            raise ValueError("'half_open_max_probes' must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.recovery_time = float(recovery_time)
        self.half_open_max_probes = int(half_open_max_probes)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_code(self) -> float:
        """0 closed, 1 half-open, 2 open (the ``dpsc_router_breaker_state``
        gauge encoding)."""
        with self._lock:
            return self._STATE_CODES[self._state]

    def _transition(self, new: str) -> None:
        old, self._state = self._state, new
        if old != new and self._on_transition is not None:
            self._on_transition(old, new)

    # ------------------------------------------------------------------
    def try_acquire(self) -> bool:
        """Admit one call?  Mutating: an admission in half-open state takes
        a probe slot that ``record_success``/``record_failure`` releases."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.recovery_time:
                    self._transition(self.HALF_OPEN)
                    self._probes = 1
                    return True
                return False
            if self._probes < self.half_open_max_probes:
                self._probes += 1
                return True
            return False

    def would_allow(self) -> bool:
        """Non-mutating preview of :meth:`try_acquire` (no probe is taken)."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                return self._clock() - self._opened_at >= self.recovery_time
            return self._probes < self.half_open_max_probes

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._transition(self.CLOSED)
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._probes = max(0, self._probes - 1)
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                self._failures = 0
                return
            if self._state == self.CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._opened_at = self._clock()
                    self._transition(self.OPEN)
                    self._failures = 0


class Deadline:
    """An absolute wall-clock instant a request must finish by."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = float(at)

    @classmethod
    def after(cls, seconds: float, *, clock: Callable[[], float] = time.time) -> "Deadline":
        return cls(clock() + float(seconds))

    def remaining(self, *, clock: Callable[[], float] = time.time) -> float:
        return self.at - clock()

    def expired(self, *, clock: Callable[[], float] = time.time) -> bool:
        return self.remaining(clock=clock) <= 0.0

    def header_value(self) -> str:
        """The wire form for :data:`DEADLINE_HEADER` (``repr`` round-trips
        the float exactly)."""
        return repr(self.at)

    @classmethod
    def from_header(cls, value: str | None) -> "Deadline | None":
        """Parse a deadline header; ``None`` for absent or garbage values
        (an unparseable deadline must never fail the request itself)."""
        if value is None:
            return None
        try:
            at = float(value)
        except (TypeError, ValueError):
            return None
        if at != at or at in (float("inf"), float("-inf")):
            return None
        return cls(at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(at={self.at!r}, remaining={self.remaining():.3f}s)"


class AdmissionGate:
    """A bounded in-flight counter (the router's load-shedding primitive)."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("admission 'limit' must be >= 1")
        self.limit = int(limit)
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_enter(self) -> bool:
        with self._lock:
            if self._inflight >= self.limit:
                return False
            self._inflight += 1
            return True

    def leave(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)


def call_with_retries(
    fn: Callable[[], object],
    *,
    retries: int,
    transient: tuple[type[BaseException], ...],
    backoff: BackoffPolicy | None = None,
    seed: object = 0,
    deadline: Deadline | None = None,
    on_retry: Callable[[BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """``fn()`` with up to ``retries`` retries on ``transient`` exceptions.

    Non-transient exceptions propagate immediately.  Delays come from a
    seeded :class:`BackoffPolicy` (deterministic per ``seed``); an expired
    ``deadline`` stops retrying even with attempts left.
    """
    policy = backoff if backoff is not None else BackoffPolicy()
    delays = policy.iter_delays(seed)
    attempt = 0
    while True:
        try:
            return fn()
        except transient as error:
            attempt += 1
            if attempt > retries:
                raise
            if deadline is not None and deadline.expired():
                raise
            if on_retry is not None:
                on_retry(error)
            sleep(next(delays))
