"""Core library: the paper's differentially private counting structures."""

from repro.core.baselines import ExactCountingOracle, build_simple_trie_baseline
from repro.core.candidate_growth import (
    build_onestep_candidate_set,
    onestep_candidate_alpha,
)
from repro.core.candidate_set import CandidateSet, build_candidate_set, candidate_alpha
from repro.core.construction import (
    build_private_counting_structure,
    build_theorem1_structure,
    build_theorem2_structure,
)
from repro.core.counts import count_delta, document_count, exact_count_table, substring_count
from repro.core.database import StringDatabase
from repro.core.lower_bounds import (
    MarginalsReduction,
    PackingInstance,
    exact_marginals,
    marginals_reduction,
    packing_database,
    packing_patterns,
    substring_lower_bound_pair,
)
from repro.core.mining import (
    GuaranteeViolations,
    MiningResult,
    check_mining_guarantee,
    mine_frequent_qgrams,
    mine_frequent_substrings,
)
from repro.core.params import DOCUMENT_COUNT, SUBSTRING_COUNT, ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.core.qgram_structure import (
    build_qgram_structure,
    build_theorem3_qgram_structure,
    build_theorem4_qgram_structure,
    qgram_counting_structure,
    theorem3_qgram_structure,
    theorem4_qgram_structure,
)

__all__ = [
    "ExactCountingOracle",
    "build_simple_trie_baseline",
    "CandidateSet",
    "build_onestep_candidate_set",
    "onestep_candidate_alpha",
    "build_candidate_set",
    "candidate_alpha",
    "build_private_counting_structure",
    "build_theorem1_structure",
    "build_theorem2_structure",
    "count_delta",
    "document_count",
    "exact_count_table",
    "substring_count",
    "StringDatabase",
    "MarginalsReduction",
    "PackingInstance",
    "exact_marginals",
    "marginals_reduction",
    "packing_database",
    "packing_patterns",
    "substring_lower_bound_pair",
    "GuaranteeViolations",
    "MiningResult",
    "check_mining_guarantee",
    "mine_frequent_qgrams",
    "mine_frequent_substrings",
    "DOCUMENT_COUNT",
    "SUBSTRING_COUNT",
    "ConstructionParams",
    "PrivateCountingTrie",
    "StructureMetadata",
    "build_qgram_structure",
    "build_theorem3_qgram_structure",
    "build_theorem4_qgram_structure",
    "qgram_counting_structure",
    "theorem3_qgram_structure",
    "theorem4_qgram_structure",
]
