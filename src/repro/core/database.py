"""The string database abstraction.

:class:`StringDatabase` models the paper's database ``D = S_1, ..., S_n`` of
documents over a public alphabet ``Sigma`` with a public maximum length
``ell``.  It owns the exact (non-private) counting index and provides the
neighboring-database operation used by sensitivity tests and lower-bound
experiments.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from repro.counting import AUTO_BACKEND, CountingEngine, make_engine, resolve_backend
from repro.exceptions import InvalidDocumentError
from repro.strings.alphabet import Alphabet, infer_alphabet
from repro.strings.generalized_index import GeneralizedSuffixIndex

__all__ = ["StringDatabase"]


class StringDatabase:
    """A collection of documents ``D = S_1, ..., S_n`` from ``Sigma^[1, ell]``.

    Parameters
    ----------
    documents:
        The documents.  They must be non-empty and respect ``max_length``.
    alphabet:
        Public alphabet of the data universe.  Inferred from the documents
        when omitted; note that for formal differential privacy the alphabet
        (like ``max_length``) should be public, data-independent information.
    max_length:
        Public bound ``ell`` on the document length; defaults to the longest
        observed document.
    """

    def __init__(
        self,
        documents: Sequence[str],
        alphabet: Alphabet | None = None,
        max_length: int | None = None,
    ) -> None:
        if not documents:
            raise InvalidDocumentError("a database must contain at least one document")
        self.documents: tuple[str, ...] = tuple(documents)
        self.alphabet: Alphabet = (
            alphabet if alphabet is not None else infer_alphabet(self.documents)
        )
        observed = max(len(document) for document in self.documents)
        self.max_length: int = max_length if max_length is not None else observed
        for document in self.documents:
            self.alphabet.validate_document(document, self.max_length)

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[str]:
        return iter(self.documents)

    def __getitem__(self, index: int) -> str:
        return self.documents[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StringDatabase(n={self.num_documents}, ell={self.max_length}, "
            f"sigma={self.alphabet.size})"
        )

    @property
    def num_documents(self) -> int:
        """``n`` — the number of documents."""
        return len(self.documents)

    @property
    def alphabet_size(self) -> int:
        """``|Sigma|``."""
        return self.alphabet.size

    @property
    def total_length(self) -> int:
        return sum(len(document) for document in self.documents)

    # ------------------------------------------------------------------
    # Exact counting (non-private)
    # ------------------------------------------------------------------
    @cached_property
    def index(self) -> GeneralizedSuffixIndex:
        """The exact counting index over the collection (built lazily)."""
        return GeneralizedSuffixIndex(self.documents, self.alphabet)

    def substring_count(self, pattern: str) -> int:
        """Exact ``count(P, D)``."""
        return self.index.substring_count(pattern)

    def document_count(self, pattern: str) -> int:
        """Exact ``count_1(P, D)``."""
        return self.index.document_count(pattern)

    def count(self, pattern: str, delta_cap: int | None = None) -> int:
        """Exact ``count_Delta(P, D)``; ``delta_cap=None`` means
        ``Delta = ell`` (Substring Count)."""
        delta = self.max_length if delta_cap is None else delta_cap
        return self.index.count(pattern, delta)

    # ------------------------------------------------------------------
    # Batched exact counting (the repro.counting engine layer)
    # ------------------------------------------------------------------
    def engine(self, backend: str) -> CountingEngine:
        """The (cached) counting engine for a concrete backend name.

        The suffix-array engine shares :attr:`index` instead of rebuilding
        it; ``"auto"`` is resolved per batch by :meth:`count_many`, so it is
        rejected here.
        """
        if backend == AUTO_BACKEND:
            raise ValueError(
                "engine() needs a concrete backend; 'auto' is resolved per "
                "batch by count_many()"
            )
        name = resolve_backend(backend)
        if not hasattr(self, "_engines"):
            self._engines: dict[str, CountingEngine] = {}
        if name not in self._engines:
            index = self.index if name == "suffix-array" else None
            self._engines[name] = make_engine(
                name, self.documents, alphabet=self.alphabet, index=index
            )
        return self._engines[name]

    def count_many(
        self,
        patterns: Sequence[str],
        delta_cap: int | None = None,
        *,
        backend: str = "auto",
    ) -> np.ndarray:
        """Exact ``count_Delta(P, D)`` of a whole batch as an int64 vector.

        ``backend`` is one of ``"auto"``, ``"naive"``, ``"suffix-array"`` or
        ``"aho-corasick"``; ``"auto"`` picks per batch from the batch size
        and the corpus size (every backend returns identical counts, so the
        choice is purely a matter of speed).
        """
        delta = self.max_length if delta_cap is None else delta_cap
        name = resolve_backend(backend, len(patterns), self.total_length)
        return self.engine(name).count_many(patterns, delta)

    # ------------------------------------------------------------------
    # Neighboring databases
    # ------------------------------------------------------------------
    def replace_document(self, index: int, replacement: str) -> "StringDatabase":
        """Return the neighboring database where document ``index`` has been
        replaced by ``replacement``."""
        if not 0 <= index < self.num_documents:
            raise IndexError(f"document index {index} out of range")
        documents = list(self.documents)
        documents[index] = replacement
        return StringDatabase(documents, self.alphabet, self.max_length)

    def is_neighbor_of(self, other: "StringDatabase") -> bool:
        """``True`` when the two databases differ in exactly one document
        (same size, same order convention)."""
        if self.num_documents != other.num_documents:
            return False
        differences = sum(
            1 for a, b in zip(self.documents, other.documents) if a != b
        )
        return differences == 1
