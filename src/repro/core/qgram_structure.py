"""Fixed-length (q-gram) counting structures (Theorems 3 and 4).

When only patterns of one fixed length ``q`` matter, the construction
simplifies considerably:

* **Theorem 3 (pure DP).**  Run the doubling candidate construction only up
  to length ``2^{floor(log2 q)}`` with half the budget, complete to candidate
  q-grams ``C_q`` through suffix/prefix overlaps (post-processing), release a
  noisy count for every candidate q-gram with the other half of the budget,
  and keep the q-grams whose noisy count reaches ``2 alpha``.

* **Theorem 4 (approximate DP).**  Under approximate DP the algorithm may
  skip strings whose true count is zero (Lemma 19), which removes the
  blow-up caused by strings outside the database.  The efficient algorithm
  (Lemma 21) walks the suffix tree of the concatenation: in phase ``k`` it
  visits the ``2^k``-minimal nodes, checks with weighted-ancestor queries
  that both halves of the corresponding string were marked in the previous
  phase, and marks the node if its noisy count reaches the threshold.  The
  final phase handles the ``q``-minimal nodes and emits the output trie.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro._deprecation import warn_deprecated
from repro.core.array_build import SortJoinCounter, pack_strings
from repro.core.candidate_set import build_candidate_set, candidate_alpha
from repro.core.database import StringDatabase
from repro.counting import AUTO_BACKEND
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.dp.composition import PrivacyAccountant
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
)
from repro.exceptions import ConstructionAborted, PrivacyParameterError
from repro.strings.trie import Trie

__all__ = [
    "qgram_counting_structure",
    "theorem3_qgram_structure",
    "theorem4_qgram_structure",
    "build_qgram_structure",
    "build_theorem3_qgram_structure",
    "build_theorem4_qgram_structure",
]


def qgram_counting_structure(
    database: StringDatabase,
    q: int,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> PrivateCountingTrie:
    """Dispatch to the pure-DP (Theorem 3) or approximate-DP (Theorem 4)
    q-gram construction depending on the budget.

    This is the canonical (non-deprecated) q-gram entry point; the
    :mod:`repro.api` registry exposes the two constructions explicitly as
    the ``"qgram-t3"`` and ``"qgram-t4"`` structure kinds.
    """
    if params.is_pure:
        return theorem3_qgram_structure(database, q, params, rng=rng, **kwargs)
    return theorem4_qgram_structure(database, q, params, rng=rng, **kwargs)


# ----------------------------------------------------------------------
# Theorem 3: pure DP.
# ----------------------------------------------------------------------
def theorem3_qgram_structure(
    database: StringDatabase,
    q: int,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    candidate_qgrams: list[str] | None = None,
) -> PrivateCountingTrie:
    """The epsilon-differentially private q-gram counting structure
    (registry kind ``"qgram-t3"``).

    ``candidate_qgrams`` lets callers supply a pre-built candidate set, in
    which case the candidate stage (and its budget) is skipped; the caller is
    responsible for having built it privately (used by ablation experiments).
    """
    if rng is None:
        rng = np.random.default_rng()
    ell = params.resolve_max_length(database.max_length)
    if not 1 <= q <= ell:
        raise PrivacyParameterError("q must lie in [1, ell]")
    delta_cap = params.resolve_delta_cap(ell)
    n = database.num_documents
    accountant = PrivacyAccountant()

    half_budget = params.budget.split(2)
    build_backend = params.resolve_build_backend()

    with obs.trace("construction", build_backend=build_backend, q=q) as trace_root:
        # Phase 1: doubling candidate sets up to 2^{floor(log2 q)}, then
        # complete to candidate q-grams C_q (the completion is
        # post-processing).
        if candidate_qgrams is None:
            with obs.span("candidates"):
                candidates = build_candidate_set(
                    database,
                    params,
                    budget=half_budget,
                    rng=rng,
                    doubling_limit=q,
                    lengths=[q],
                )
            for record in candidates.accountant.records:
                accountant.spend(record.label, record.epsilon, record.delta)
            candidate_qgrams = candidates.by_length.get(q, [])
            candidate_alpha_value = candidates.alpha
        else:
            candidate_qgrams = list(candidate_qgrams)
            candidate_alpha_value = 0.0

        # Phase 2: noisy counts of every candidate q-gram with the second half
        # of the budget, keeping those above 2 alpha.
        mechanism: CountingMechanism
        if params.noiseless:
            mechanism = NoiselessMechanism()
        else:
            mechanism = LaplaceMechanism(half_budget.epsilon)
        alpha = candidate_alpha(
            n, ell, database.alphabet_size, mechanism, params.beta / 2.0, delta_cap
        )
        threshold = params.threshold if params.threshold is not None else 2.0 * alpha

        with obs.span("counts", patterns=len(candidate_qgrams)):
            exact = _candidate_qgram_counts(
                database, params, candidate_qgrams, delta_cap
            )
        with obs.span("noise"):
            if len(candidate_qgrams):
                noisy = mechanism.randomize(
                    exact,
                    l1_sensitivity=2.0 * ell,
                    l2_sensitivity=math.sqrt(2.0 * ell * delta_cap),
                    rng=rng,
                )
            else:
                noisy = exact
        accountant.spend(
            "q-gram counts", mechanism.epsilon if not params.noiseless else 0.0, 0.0
        )

        with obs.span("trie_build"):
            trie = Trie()
            kept = 0
            for pattern, value in zip(candidate_qgrams, noisy):
                if value >= threshold:
                    node = trie.insert(pattern)
                    node.noisy_count = float(value)
                    kept += 1
        if kept > n * ell:
            raise ConstructionAborted(
                f"q-gram set grew to {kept} > n*ell = {n * ell}", level=q
            )

    metadata = StructureMetadata(
        epsilon=params.budget.epsilon,
        delta=0.0,
        beta=params.beta,
        delta_cap=delta_cap,
        max_length=ell,
        num_documents=n,
        alphabet_size=database.alphabet_size,
        error_bound=alpha,
        threshold=threshold,
        qgram_length=q,
        construction="theorem-3 (pure DP q-grams)",
        count_backend=params.count_backend,
    )
    report = {
        "candidate_size": len(candidate_qgrams),
        "candidate_alpha": candidate_alpha_value,
        "stored_qgrams": kept,
        "privacy_spent_epsilon": accountant.total_epsilon,
        "privacy_spent_delta": accountant.total_delta,
        "absent_pattern_bound": max(3.0 * candidate_alpha_value, threshold + alpha),
    }
    structure = PrivateCountingTrie(trie=trie, metadata=metadata, report=report)
    if trace_root is not None:
        structure.profile = obs.BuildProfile(trace_root)
    return structure


def _candidate_qgram_counts(
    database: StringDatabase,
    params: ConstructionParams,
    candidate_qgrams: list[str],
    delta_cap: int,
) -> np.ndarray:
    """Exact counts of the candidate q-grams as a float64 vector.

    The array pipeline with an ``"auto"`` counting backend routes the
    uniform-length batch through the sort-join counter (one window sort
    instead of a per-batch automaton); every other combination keeps the
    engine-layer ``count_many``.  Counts are integers either way, so the
    choice never changes a released value.
    """
    if (
        candidate_qgrams
        and params.resolve_build_backend() == "array"
        and params.count_backend == AUTO_BACKEND
    ):
        matrix, lengths = pack_strings(candidate_qgrams)
        if (lengths == lengths[0]).all():
            counter = SortJoinCounter.shared(database)
            return counter.counts(matrix, delta_cap).astype(np.float64)
    return database.count_many(
        candidate_qgrams, delta_cap, backend=params.count_backend
    ).astype(np.float64)


# ----------------------------------------------------------------------
# Theorem 4: approximate DP via the suffix tree (Lemma 21).
# ----------------------------------------------------------------------
def theorem4_qgram_structure(
    database: StringDatabase,
    q: int,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
) -> PrivateCountingTrie:
    """The (epsilon, delta)-differentially private q-gram structure with
    near-linear construction time (registry kind ``"qgram-t4"``).

    Only strings with a non-zero true count ever receive a noisy count
    (Lemma 19 shows this preserves approximate DP), which is why the
    algorithm can restrict itself to nodes of the suffix tree of the
    database.
    """
    if rng is None:
        rng = np.random.default_rng()
    ell = params.resolve_max_length(database.max_length)
    if not 1 <= q <= ell:
        raise PrivacyParameterError("q must lie in [1, ell]")
    if params.budget.is_pure and not params.noiseless:
        raise PrivacyParameterError(
            "the Theorem 4 construction requires delta > 0 (use Theorem 3 for pure DP)"
        )
    delta_cap = params.resolve_delta_cap(ell)
    n = database.num_documents
    epsilon, delta = params.budget.epsilon, params.budget.delta
    num_phases = int(math.floor(math.log2(max(1, q)))) + 2
    epsilon_phase = epsilon / num_phases
    if params.noiseless:
        beta_phase = params.beta / num_phases
        mechanism: CountingMechanism = NoiselessMechanism()
    else:
        beta_phase = min(
            params.beta / num_phases, delta / (3.0 * math.exp(epsilon) * num_phases)
        )
        delta_phase = beta_phase
        mechanism = GaussianMechanism(epsilon_phase, delta_phase)
    accountant = PrivacyAccountant()

    alpha = candidate_alpha(
        n, ell, database.alphabet_size, mechanism, beta_phase, delta_cap
    )
    threshold = params.threshold if params.threshold is not None else 2.0 * alpha

    index = database.index
    tree = index.suffix_tree

    def valid_prefix(position: int, length: int) -> bool:
        return index.is_within_document(position, length)

    def noisy_count_of(node_id: int) -> float:
        node = tree.nodes[node_id]
        exact = float(index.count_of_interval(node.sa_lo, node.sa_hi, delta_cap))
        value = mechanism.randomize(
            np.array([exact]),
            l1_sensitivity=2.0 * ell,
            l2_sensitivity=math.sqrt(2.0 * ell * delta_cap),
            rng=rng,
        )
        return float(value[0])

    # The suffix-tree walk has no array/object split; "object" keeps the
    # profile's backend attribute uniform across structure kinds.
    with obs.trace("construction", build_backend="object", q=q) as trace_root:
        # Phase 0: mark the 1-minimal nodes whose noisy count reaches the
        # threshold.
        marked: set[int] = set()
        with obs.span("phase", length=1):
            for node_id in tree.minimal_nodes_at_depth(1, valid_prefix):
                if noisy_count_of(node_id) >= threshold:
                    marked.add(node_id)
        accountant.spend("q-gram phase 1", mechanism.epsilon, mechanism.delta)
        if len(marked) > n * ell:
            raise ConstructionAborted("phase 1 marking exceeded n*ell", level=1)

        # Doubling phases.
        j = int(math.floor(math.log2(max(1, q))))
        length = 1
        for _ in range(1, j + 1):
            length *= 2
            half = length // 2
            new_marked: set[int] = set()
            with obs.span("phase", length=length):
                for node_id in tree.minimal_nodes_at_depth(length, valid_prefix):
                    witness = tree.node_prefix_start(node_id)
                    first = tree.weighted_ancestor(
                        tree.leaf_for_position(witness), half
                    )
                    second_leaf = tree.leaf_for_position(witness + half)
                    second = tree.weighted_ancestor(second_leaf, half)
                    if first in marked and second in marked:
                        if noisy_count_of(node_id) >= threshold:
                            new_marked.add(node_id)
            accountant.spend(
                f"q-gram phase {length}", mechanism.epsilon, mechanism.delta
            )
            if len(new_marked) > n * ell:
                raise ConstructionAborted(
                    f"phase {length} marking exceeded n*ell", level=length
                )
            marked = new_marked

        # Final phase: q-minimal nodes whose length-2^j prefix and suffix were
        # both marked.
        power = 1 << j
        trie = Trie()
        kept = 0
        with obs.span("final_phase", length=q):
            for node_id in tree.minimal_nodes_at_depth(q, valid_prefix):
                witness = tree.node_prefix_start(node_id)
                first = tree.weighted_ancestor(tree.leaf_for_position(witness), power)
                second_leaf = tree.leaf_for_position(witness + q - power)
                second = tree.weighted_ancestor(second_leaf, power)
                if first in marked and second in marked:
                    value = noisy_count_of(node_id)
                    if value >= threshold:
                        pattern = index.decode_prefix(witness, q)
                        node = trie.insert(pattern)
                        node.noisy_count = value
                        kept += 1
        accountant.spend("q-gram final phase", mechanism.epsilon, mechanism.delta)

    metadata = StructureMetadata(
        epsilon=epsilon,
        delta=delta,
        beta=params.beta,
        delta_cap=delta_cap,
        max_length=ell,
        num_documents=n,
        alphabet_size=database.alphabet_size,
        error_bound=alpha,
        threshold=threshold,
        qgram_length=q,
        construction="theorem-4 (approx DP q-grams)",
        # The Lemma 21 walk reads counts straight off suffix-tree intervals;
        # it never goes through a per-pattern engine batch.
        count_backend="suffix-array",
    )
    report = {
        "stored_qgrams": kept,
        "num_phases": num_phases,
        "privacy_spent_epsilon": accountant.total_epsilon,
        "privacy_spent_delta": accountant.total_delta,
        "absent_pattern_bound": threshold + alpha,
    }
    structure = PrivateCountingTrie(trie=trie, metadata=metadata, report=report)
    if trace_root is not None:
        structure.profile = obs.BuildProfile(trace_root)
    return structure


# ----------------------------------------------------------------------
# Deprecated entry points (the pre-repro.api public surface).
# ----------------------------------------------------------------------
def build_qgram_structure(
    database: StringDatabase,
    q: int,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
) -> PrivateCountingTrie:
    """Deprecated alias of :func:`qgram_counting_structure`; prefer
    ``Dataset.from_database(db).with_params(params).build("qgram-t3", q=q)``
    (or ``"qgram-t4"``).  Results are identical under the same rng."""
    warn_deprecated(
        "build_qgram_structure", 'Dataset...build("qgram-t3"/"qgram-t4", q=q)'
    )
    return qgram_counting_structure(database, q, params, rng=rng)


def build_theorem3_qgram_structure(
    database: StringDatabase,
    q: int,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    candidate_qgrams: list[str] | None = None,
) -> PrivateCountingTrie:
    """Deprecated alias of :func:`theorem3_qgram_structure` (registry kind
    ``"qgram-t3"``).  Results are identical under the same rng."""
    warn_deprecated(
        "build_theorem3_qgram_structure", 'Dataset...build("qgram-t3", q=q)'
    )
    return theorem3_qgram_structure(
        database, q, params, rng=rng, candidate_qgrams=candidate_qgrams
    )


def build_theorem4_qgram_structure(
    database: StringDatabase,
    q: int,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
) -> PrivateCountingTrie:
    """Deprecated alias of :func:`theorem4_qgram_structure` (registry kind
    ``"qgram-t4"``).  Results are identical under the same rng."""
    warn_deprecated(
        "build_theorem4_qgram_structure", 'Dataset...build("qgram-t4", q=q)'
    )
    return theorem4_qgram_structure(database, q, params, rng=rng)
