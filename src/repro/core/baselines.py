"""Baselines the paper compares against.

* :func:`build_simple_trie_baseline` — the "simple approach" from the
  technical overview, used (in various guises) by prior applied work
  [10, 18, 19, 50, 51, 72].  The trie is expanded top-down letter by letter
  and every expanded node receives a noisy count.  A single document can
  influence the counts of up to ``Theta(ell^2)`` nodes (all its substrings),
  so the noise must be scaled to an L1 sensitivity of ``ell (ell + 1)``,
  which is where the baseline's ``Omega(ell^2)`` error comes from.  The
  paper's heavy-path construction reduces this to roughly ``ell``.

* :class:`ExactCountingOracle` — a non-private oracle with the same query
  interface as the private structures, used as ground truth by benchmarks and
  tests.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro import obs
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
)
from repro.strings.trie import Trie

__all__ = ["build_simple_trie_baseline", "ExactCountingOracle"]


def build_simple_trie_baseline(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    max_nodes: int = 100_000,
    max_depth: int | None = None,
) -> PrivateCountingTrie:
    """The simple top-down private trie baseline (technical overview).

    Starting from the root, every frontier node is expanded with one child
    per letter of the alphabet; each new node receives a noisy count of the
    string it spells, and is expanded further only when the noisy count
    reaches the threshold.  The entire expansion is one release of counts
    whose L1 sensitivity is ``ell (ell + 1)`` (a replaced document changes
    the counts of all its ``O(ell^2)`` substring occurrences), so the noise —
    and hence the error — scales with ``ell^2``.

    Parameters
    ----------
    max_nodes:
        Safety cap on the number of expanded nodes (the expansion of a noisy
        trie can in principle run away when the noise scale exceeds the
        threshold).
    max_depth:
        Maximum pattern length to expand (defaults to ``ell``).
    """
    if rng is None:
        rng = np.random.default_rng()
    ell = params.resolve_max_length(database.max_length)
    delta_cap = params.resolve_delta_cap(ell)
    depth_limit = ell if max_depth is None else min(max_depth, ell)

    # Sensitivity of the full release: each document contributes at most
    # ell (ell + 1) / 2 substring occurrences, and a replacement changes two
    # documents.
    l1_sensitivity = float(ell * (ell + 1))
    l2_sensitivity = math.sqrt(l1_sensitivity * delta_cap)

    mechanism: CountingMechanism
    if params.noiseless:
        mechanism = NoiselessMechanism()
    elif params.budget.is_pure:
        mechanism = LaplaceMechanism(params.budget.epsilon)
    else:
        mechanism = GaussianMechanism(params.budget.epsilon, params.budget.delta)

    # Error bound of the released counts; the number of potentially released
    # counts is bounded by the node cap.
    alpha = mechanism.sup_error_bound(
        max_nodes,
        params.beta,
        l1_sensitivity=l1_sensitivity,
        l2_sensitivity=l2_sensitivity,
    )
    threshold = params.threshold if params.threshold is not None else 2.0 * alpha

    index = database.index
    trie = Trie()
    trie.root.count = float(index.count("", delta_cap))
    trie.root.noisy_count = trie.root.count
    with obs.trace("construction", build_backend="object") as trace_root:
        with obs.span("expand") as sp:
            # Frontier of (node, SA interval) pairs to expand, breadth-first.
            frontier: deque = deque([(trie.root, (0, len(index.suffix_array)))])
            expanded = 0
            truncated = False
            while frontier:
                node, (lo, hi) = frontier.popleft()
                if node.depth >= depth_limit:
                    continue
                for symbol in database.alphabet:
                    if expanded >= max_nodes:
                        truncated = True
                        break
                    child_lo, child_hi = index.extend_interval(
                        lo, hi, node.depth, symbol
                    )
                    exact = float(
                        index.count_of_interval(child_lo, child_hi, delta_cap)
                    )
                    noisy = float(
                        mechanism.randomize(
                            np.array([exact]),
                            l1_sensitivity=l1_sensitivity,
                            l2_sensitivity=l2_sensitivity,
                            rng=rng,
                        )[0]
                    )
                    child = trie.insert(node.string() + symbol)
                    child.count = exact
                    child.noisy_count = noisy
                    expanded += 1
                    if noisy >= threshold:
                        frontier.append((child, (child_lo, child_hi)))
                if truncated:
                    break
            if sp is not None:
                sp.attrs["nodes"] = expanded

    metadata = StructureMetadata(
        epsilon=params.budget.epsilon,
        delta=params.budget.delta,
        beta=params.beta,
        delta_cap=delta_cap,
        max_length=ell,
        num_documents=database.num_documents,
        alphabet_size=database.alphabet_size,
        error_bound=alpha,
        threshold=threshold,
        construction="simple-trie baseline",
    )
    report = {
        "expanded_nodes": expanded,
        "truncated": truncated,
        "l1_sensitivity": l1_sensitivity,
    }
    structure = PrivateCountingTrie(trie=trie, metadata=metadata, report=report)
    if trace_root is not None:
        structure.profile = obs.BuildProfile(trace_root)
    return structure


class ExactCountingOracle:
    """A non-private oracle with the same query interface as the private
    structures.  Used as ground truth in benchmarks, metrics and examples."""

    def __init__(self, database: StringDatabase, delta_cap: int | None = None) -> None:
        self.database = database
        self.delta_cap = (
            database.max_length if delta_cap is None else min(delta_cap, database.max_length)
        )

    def query(self, pattern: str) -> float:
        """Exact ``count_Delta(pattern, D)``."""
        return float(self.database.count(pattern, self.delta_cap))

    def mine(
        self,
        threshold: float,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
    ) -> list[tuple[str, float]]:
        """Exact frequent patterns (every substring with count >=
        threshold)."""
        from repro.core.counts import exact_count_table

        limit = max_length if max_length is not None else self.database.max_length
        table = exact_count_table(self.database, self.delta_cap, max_length=limit)
        results = []
        for pattern, count in table.items():
            if count < threshold or len(pattern) < min_length:
                continue
            if exact_length is not None and len(pattern) != exact_length:
                continue
            results.append((pattern, float(count)))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results

    @property
    def error_bound(self) -> float:
        return 0.0
