"""Frequent substring and q-gram mining on top of the private structures.

Given a private counting structure, alpha-approximate Substring Mining
(Definition 2) reduces to a traversal: report every stored pattern whose noisy
count reaches the threshold ``tau``.  Because the structure was built by a
differentially private algorithm, any number of thresholds (and any number of
mining runs) can be evaluated without further privacy loss.

The guarantee inherited from the structure's error bound ``alpha`` is:

* every pattern with true count ``>= tau + alpha`` is reported, and
* no pattern with true count ``<= tau - alpha`` is reported;

patterns with true count inside ``(tau - alpha, tau + alpha)`` may go either
way.  :func:`check_mining_guarantee` verifies exactly this contract against
exact counts and is used heavily by the tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.counts import exact_count_table
from repro.core.database import StringDatabase
from repro.core.private_trie import PrivateCountingTrie

__all__ = [
    "MiningResult",
    "mine_frequent_substrings",
    "mine_frequent_qgrams",
    "check_mining_guarantee",
]


@dataclass
class MiningResult:
    """Outcome of one mining run."""

    threshold: float
    patterns: list[tuple[str, float]]
    #: the structure's error bound alpha, i.e. the approximation slack of
    #: Definition 2 that the result is guaranteed to satisfy (w.h.p.).
    alpha: float

    def pattern_set(self) -> set[str]:
        return {pattern for pattern, _ in self.patterns}

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)


def mine_frequent_substrings(
    structure: PrivateCountingTrie,
    threshold: float,
    *,
    min_length: int = 1,
    max_length: int | None = None,
) -> MiningResult:
    """alpha-approximate Substring Mining: all stored patterns with a noisy
    count at least ``threshold``."""
    patterns = structure.mine(
        threshold, min_length=min_length, max_length=max_length
    )
    alpha = (
        structure.mining_alpha(threshold)
        if hasattr(structure, "mining_alpha")
        else structure.error_bound
    )
    return MiningResult(threshold=threshold, patterns=patterns, alpha=alpha)


def mine_frequent_qgrams(
    structure: PrivateCountingTrie, threshold: float, q: int
) -> MiningResult:
    """alpha-approximate q-Gram Mining: stored length-``q`` patterns with a
    noisy count at least ``threshold``."""
    patterns = structure.mine(threshold, exact_length=q)
    alpha = (
        structure.mining_alpha(threshold)
        if hasattr(structure, "mining_alpha")
        else structure.error_bound
    )
    return MiningResult(threshold=threshold, patterns=patterns, alpha=alpha)


@dataclass
class GuaranteeViolations:
    """Violations of the alpha-approximate mining contract."""

    #: patterns with true count >= tau + alpha that were not reported.
    missed: list[str]
    #: reported patterns with true count <= tau - alpha.
    spurious: list[str]

    @property
    def ok(self) -> bool:
        return not self.missed and not self.spurious


def check_mining_guarantee(
    result: MiningResult,
    exact_counts: Mapping[str, int] | StringDatabase,
    *,
    delta_cap: int | None = None,
    alpha: float | None = None,
    restrict_to_length: int | None = None,
    candidate_patterns: Sequence[str] | None = None,
) -> GuaranteeViolations:
    """Verify the alpha-approximate mining contract (Definition 2).

    Parameters
    ----------
    result:
        The mining output to check.
    exact_counts:
        Either a mapping from pattern to exact count, or a database from
        which the exact counts of all its substrings are computed.
    delta_cap:
        Contribution cap used when ``exact_counts`` is a database.
    alpha:
        Approximation slack; defaults to the structure's error bound carried
        by ``result``.
    restrict_to_length:
        Only check patterns of this length (for q-gram mining).
    candidate_patterns:
        Restrict the "missed" check to these patterns (defaults to every
        pattern appearing in ``exact_counts``).  Patterns not occurring in
        the database have count 0 and can never be missed.
    """
    slack = result.alpha if alpha is None else alpha
    if isinstance(exact_counts, StringDatabase):
        cap = exact_counts.max_length if delta_cap is None else delta_cap
        table: Mapping[str, int] = exact_count_table(exact_counts, cap)
    else:
        table = exact_counts
    reported = result.pattern_set()
    universe = candidate_patterns if candidate_patterns is not None else list(table)

    missed = []
    for pattern in universe:
        if restrict_to_length is not None and len(pattern) != restrict_to_length:
            continue
        if table.get(pattern, 0) >= result.threshold + slack and pattern not in reported:
            missed.append(pattern)
    spurious = []
    for pattern in reported:
        if restrict_to_length is not None and len(pattern) != restrict_to_length:
            continue
        # Strictly below tau - alpha: at alpha = 0 a count exactly equal to
        # the threshold satisfies both clauses of Definition 2, so it is not
        # a violation to report it.
        if table.get(pattern, 0) < result.threshold - slack:
            spurious.append(pattern)
    return GuaranteeViolations(missed=sorted(missed), spurious=sorted(spurious))
