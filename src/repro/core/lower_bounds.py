"""Lower-bound constructions (Theorems 5, 6 and 7).

The paper's lower bounds are information-theoretic statements about *every*
differentially private algorithm; they cannot be "run".  What can be run —
and what the benchmarks do — is the explicit hard instances used in the
proofs:

* **Theorem 6** builds the neighboring pair ``D = {a^ell, b^ell, ...}`` vs
  ``D' = {b^ell, b^ell, ...}`` on which the substring count of the single
  letter ``a`` differs by ``ell``; any private structure must err by
  ``Omega(ell)`` on at least one of the two.
* **Theorem 5** builds the packing instances ``D(P_1, ..., P_k)`` in which
  ``k = ell / m`` secret patterns are embedded at coded positions; accurate
  mining would reveal the embedded patterns, so the error must be
  ``Omega(min(n, ell log|Sigma| / eps))``.
* **Theorem 7** reduces 1-way marginals to Document Count: each binary vector
  becomes a document of position gadgets ``code(j) . Y_i[j] . '$'`` and the
  ``j``-th marginal is recovered by querying ``code(j) . '1'``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.database import StringDatabase
from repro.strings.alphabet import Alphabet

__all__ = [
    "substring_lower_bound_pair",
    "PackingInstance",
    "packing_patterns",
    "packing_database",
    "MarginalsReduction",
    "marginals_reduction",
    "exact_marginals",
]


# ----------------------------------------------------------------------
# Theorem 6: the a^ell vs b^ell pair.
# ----------------------------------------------------------------------
def substring_lower_bound_pair(
    ell: int, n: int, symbols: tuple[str, str] = ("a", "b")
) -> tuple[StringDatabase, StringDatabase, str]:
    """The neighboring databases of Theorem 6's proof and the distinguishing
    pattern.

    ``D`` contains one copy of ``a^ell`` and ``n - 1`` copies of ``b^ell``;
    ``D'`` replaces the ``a^ell`` document by ``b^ell``.  The substring count
    of ``P = a`` is ``ell`` on ``D`` and ``0`` on ``D'``.
    """
    if ell < 1 or n < 1:
        raise ValueError("ell and n must be at least 1")
    a, b = symbols
    alphabet = Alphabet(tuple(sorted({a, b})))
    documents = [a * ell] + [b * ell] * (n - 1)
    neighbors = [b * ell] * n
    database = StringDatabase(documents, alphabet, max_length=ell)
    neighbor = StringDatabase(neighbors, alphabet, max_length=ell)
    return database, neighbor, a


# ----------------------------------------------------------------------
# Theorem 5: packing instances.
# ----------------------------------------------------------------------
@dataclass
class PackingInstance:
    """One packing instance ``D(P_1, ..., P_k)``.

    Attributes
    ----------
    database:
        ``B`` copies of the pattern-carrying document and ``n - B`` filler
        documents.
    planted_patterns:
        The embedded query strings ``P_i . code(i)`` of length ``m`` whose
        counts reveal the secret patterns.
    secret_patterns:
        The secret half-length patterns ``P_1, ..., P_k``.
    copies:
        ``B`` — the number of documents carrying the secret patterns.
    """

    database: StringDatabase
    planted_patterns: list[str]
    secret_patterns: list[str]
    copies: int


def _binary_code(value: int, length: int, zero: str, one: str) -> str:
    bits = []
    for position in range(length - 1, -1, -1):
        bits.append(one if (value >> position) & 1 else zero)
    return "".join(bits)


def packing_patterns(
    k: int, m: int, symbols: Sequence[str], rng: np.random.Generator
) -> list[str]:
    """Draw ``k`` secret patterns of length ``m // 2`` over the reduced
    alphabet ``Sigma \\ {0, 1}`` used by the packing construction."""
    if m % 2 != 0:
        raise ValueError("the packing pattern length m must be even")
    if not symbols:
        raise ValueError("the reduced alphabet must be non-empty")
    half = m // 2
    choices = rng.integers(0, len(symbols), size=(k, half))
    return ["".join(symbols[int(c)] for c in row) for row in choices]


def packing_database(
    secret_patterns: Sequence[str],
    ell: int,
    n: int,
    copies: int,
    alphabet: Alphabet,
    zero: str = "0",
    one: str = "1",
) -> PackingInstance:
    """Build the packing instance of Theorem 5's proof.

    Each carrying document is ``P_1 c_1 P_2 c_2 ... P_k c_k`` where ``c_i``
    is the binary position code of ``i``; the remaining ``n - copies``
    documents are all-``zero`` filler.  The planted query strings are
    ``P_i c_i`` (length ``m``); their count is ``copies`` on this database
    and ``0`` on any database built from different secret patterns.
    """
    if not secret_patterns:
        raise ValueError("at least one secret pattern is required")
    half = len(secret_patterns[0])
    if any(len(p) != half for p in secret_patterns):
        raise ValueError("all secret patterns must have the same length")
    code_length = half
    carrier_parts = []
    planted = []
    for i, pattern in enumerate(secret_patterns):
        code = _binary_code(i, code_length, zero, one)
        carrier_parts.append(pattern + code)
        planted.append(pattern + code)
    carrier = "".join(carrier_parts)
    if len(carrier) > ell:
        raise ValueError(
            f"k * m = {len(carrier)} exceeds the document length ell = {ell}"
        )
    carrier = carrier + zero * (ell - len(carrier))
    filler = zero * ell
    if not 0 <= copies <= n:
        raise ValueError("copies must lie in [0, n]")
    documents = [carrier] * copies + [filler] * (n - copies)
    database = StringDatabase(documents, alphabet, max_length=ell)
    return PackingInstance(
        database=database,
        planted_patterns=planted,
        secret_patterns=list(secret_patterns),
        copies=copies,
    )


# ----------------------------------------------------------------------
# Theorem 7: reduction from 1-way marginals to Document Count.
# ----------------------------------------------------------------------
@dataclass
class MarginalsReduction:
    """The Document Count instance encoding a 1-way marginals instance."""

    database: StringDatabase
    #: query pattern whose document count (divided by n) is the j-th marginal.
    column_patterns: list[str]
    #: number of rows n of the marginals instance.
    num_rows: int

    def marginals_from_counts(self, counts: Sequence[float]) -> np.ndarray:
        """Convert (noisy) document counts of the column patterns into
        marginal estimates."""
        return np.asarray(counts, dtype=np.float64) / float(self.num_rows)


def marginals_reduction(matrix: np.ndarray) -> MarginalsReduction:
    """Encode a binary matrix ``Y`` (``n x d``) as a Document Count instance
    (Theorem 7's reduction with ``b = 3``, i.e. alphabet ``{0, 1, $}``).

    Document ``i`` is the concatenation of the position gadgets
    ``code(j) Y[i, j] '$'`` over all columns ``j``; the marginal of column
    ``j`` equals ``count_1(code(j) '1', D) / n``.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("the marginals matrix must be two-dimensional")
    if not np.isin(matrix, (0, 1)).all():
        raise ValueError("the marginals matrix must be binary")
    n, d = matrix.shape
    if n < 1 or d < 1:
        raise ValueError("the marginals matrix must be non-empty")
    code_length = max(1, math.ceil(math.log2(max(2, d))))
    alphabet = Alphabet(("$", "0", "1"))

    codes = [_binary_code(j, code_length, "0", "1") for j in range(d)]
    documents = []
    for i in range(n):
        gadgets = [
            codes[j] + ("1" if matrix[i, j] else "0") + "$" for j in range(d)
        ]
        documents.append("".join(gadgets))
    ell = d * (code_length + 2)
    database = StringDatabase(documents, alphabet, max_length=ell)
    column_patterns = [codes[j] + "1" for j in range(d)]
    return MarginalsReduction(
        database=database, column_patterns=column_patterns, num_rows=n
    )


def exact_marginals(matrix: np.ndarray) -> np.ndarray:
    """The exact 1-way marginals ``q_j(Y) = (1/n) sum_i Y[i, j]``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return matrix.mean(axis=0)
