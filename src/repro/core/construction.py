"""The main construction algorithms (Theorems 1 and 2).

Given a database ``D`` and a privacy budget, the construction produces a
:class:`~repro.core.private_trie.PrivateCountingTrie` for ``count_Delta`` with
additive error ``O(ell polylog)`` under pure DP (Theorem 1) and
``O(sqrt(ell Delta) polylog)`` under approximate DP (Theorem 2).  The six
steps follow Section 3 of the paper:

1. **Candidate set** — :func:`repro.core.candidate_set.build_candidate_set`
   reduces the universe to at most ``n^2 ell^3`` strings (Lemmas 6/15).
2. **Trie + heavy paths** — the candidates are arranged in a trie ``T_C``
   whose heavy path decomposition bounds, for any single document, the number
   of heavy paths whose counts it can influence (Lemmas 9/10).
3. **Noisy heavy-path roots** — the counts of all heavy-path roots are
   released with one Laplace/Gaussian mechanism invocation (Corollaries 4/7).
4. **Noisy prefix sums of difference sequences** — along every heavy path the
   binary-tree mechanism releases all prefix sums of the count differences
   (Corollaries 5/8).
5. **Combine** — every node's noisy count is its path root's noisy count plus
   the noisy prefix sum at its offset.
6. **Prune** — subtrees whose noisy count falls below ``2 alpha`` are
   removed, which bounds the stored size by ``O(n ell^2)`` nodes with high
   probability.

The same code serves both privacy flavours: the mechanisms are selected from
the budget (``delta = 0`` -> Laplace, ``delta > 0`` -> Gaussian).

Steps 2-6 run on one of two **bit-identical pipelines** selected by
``ConstructionParams.build_backend``: the linked-object reference pipeline
(``"object"``) and the array-native fast path (``"array"``, the default via
``"auto"``), which keeps the candidate trie, heavy paths, difference
sequences and noise application in flat numpy arrays until the final
structure is materialized.  Identical means identical: same exact counts,
same RNG draw order, same noisy values, same prune set, same
``content_digest()`` — see docs/PERFORMANCE.md and
``tests/core/test_build_backends.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro import obs
from repro._deprecation import warn_deprecated
from repro.core.array_build import (
    PAD,
    annotate_counts_array,
    build_array_trie,
    lexsort_rows,
    materialize_structure,
    pack_strings,
)
from repro.core.candidate_set import CandidateSet, build_candidate_set
from repro.core.database import StringDatabase
from repro.counting import resolve_backend
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.dp.composition import PrivacyAccountant, PrivacyBudget
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
)
from repro.dp.prefix_sums import PrefixSumMechanism
from repro.strings.trie import Trie, TrieNode
from repro.trees.heavy_path import FlatHeavyPathDecomposition, HeavyPathDecomposition

__all__ = [
    "build_private_counting_structure",
    "build_theorem1_structure",
    "build_theorem2_structure",
    "annotate_trie_with_exact_counts",
]


def _stage_mechanism(
    budget: PrivacyBudget, noiseless: bool
) -> CountingMechanism:
    if noiseless:
        return NoiselessMechanism()
    if budget.is_pure:
        return LaplaceMechanism(budget.epsilon)
    return GaussianMechanism(budget.epsilon, budget.delta)


def annotate_trie_with_exact_counts(
    trie: Trie, database: StringDatabase, delta_cap: int, *, backend: str = "auto"
) -> None:
    """Store ``count_Delta(str(v), D)`` in ``node.count`` for every node of
    the candidate trie, using the requested :mod:`repro.counting` backend.

    The trie's node set is prefix-closed, so the suffix-array backend has a
    batch strategy of its own: the counts of all prefixes of a candidate
    string are computed incrementally by narrowing the SA interval one
    character at a time, annotating the whole trie in
    ``O(num_nodes * (log N + cost of a capped count))``.  Every other
    backend receives the node strings as one ``count_many`` batch; the
    strings are collected incrementally during one DFS (extending the
    parent's prefix by one character), never via the ``O(depth)``
    parent-pointer walk of ``node.string()`` — so the batch assembly is
    linear in total characters instead of quadratic on deep tries.
    """
    # The empty pattern occurs min(len(S), delta) times per document; computing
    # it from the lengths keeps the non-suffix-array backends from forcing the
    # O(N log N) index build.
    trie.root.count = float(
        sum(min(len(document), delta_cap) for document in database.documents)
    )
    num_nodes = trie.num_nodes - 1
    name = resolve_backend(backend, num_nodes, database.total_length)
    if name == "suffix-array":
        index = database.index
        root_interval = (0, len(index.suffix_array))
        stack: list[tuple[TrieNode, tuple[int, int]]] = [(trie.root, root_interval)]
        while stack:
            node, (lo, hi) = stack.pop()
            for char, child in node.children.items():
                child_lo, child_hi = index.extend_interval(lo, hi, node.depth, char)
                child.count = float(
                    index.count_of_interval(child_lo, child_hi, delta_cap)
                )
                stack.append((child, (child_lo, child_hi)))
        return
    nodes: list[TrieNode] = []
    patterns: list[str] = []
    prefix_stack: list[tuple[TrieNode, str]] = [(trie.root, "")]
    while prefix_stack:
        node, prefix = prefix_stack.pop()
        if node is not trie.root:
            nodes.append(node)
            patterns.append(prefix)
        for char, child in node.children.items():
            prefix_stack.append((child, prefix + char))
    counts = database.engine(name).count_many(patterns, delta_cap)
    for node, count in zip(nodes, counts):
        node.count = float(count)


def build_private_counting_structure(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    candidate_set: CandidateSet | None = None,
) -> PrivateCountingTrie:
    """Build the differentially private counting structure of Theorem 1
    (pure budgets) or Theorem 2 (approximate budgets).

    Parameters
    ----------
    database:
        The database ``D``.
    params:
        Privacy budget, failure probability, contribution cap and knobs
        (including ``build_backend``, which selects the object or array
        pipeline — bit-identical outputs, different speeds).
    rng:
        Randomness source (fresh default generator when omitted).
    candidate_set:
        Pre-built candidate set.  When supplied, the candidate stage is
        skipped entirely and its budget is **not** consumed — callers are
        responsible for having built it privately (used by ablation
        benchmarks and tests).
    """
    if rng is None:
        rng = np.random.default_rng()
    backend = params.resolve_build_backend()

    ell = params.resolve_max_length(database.max_length)
    delta_cap = params.resolve_delta_cap(ell)
    beta_stage = params.beta / 3.0
    accountant = PrivacyAccountant()

    # ------------------------------------------------------------------
    # Budget split: candidate stage gets `candidate_budget_fraction`, the
    # remaining budget is shared evenly by the roots and prefix-sum stages.
    # When the caller supplies a pre-built candidate set, the candidate stage
    # consumes nothing here and the whole budget goes to the two counting
    # stages.
    # ------------------------------------------------------------------
    if candidate_set is None:
        candidate_budget = params.budget.scaled(params.candidate_budget_fraction)
        remaining_fraction = (1.0 - params.candidate_budget_fraction) / 2.0
    else:
        candidate_budget = None
        remaining_fraction = 0.5
    stage_budget = params.budget.scaled(remaining_fraction)

    with obs.trace("construction", build_backend=backend) as root:
        # --------------------------------------------------------------
        # Step 1: candidate set.
        # --------------------------------------------------------------
        if candidate_set is None:
            with obs.span("candidates"):
                candidate_set = build_candidate_set(
                    database, params, budget=candidate_budget, rng=rng
                )
            for record in candidate_set.accountant.records:
                accountant.spend(record.label, record.epsilon, record.delta)

        if backend == "array":
            structure = _finish_structure_array(
                database,
                params,
                rng,
                candidate_set,
                stage_budget=stage_budget,
                accountant=accountant,
                ell=ell,
                delta_cap=delta_cap,
                beta_stage=beta_stage,
            )
        else:
            structure = _finish_structure_object(
                database,
                params,
                rng,
                candidate_set,
                stage_budget=stage_budget,
                accountant=accountant,
                ell=ell,
                delta_cap=delta_cap,
                beta_stage=beta_stage,
            )
    if root is not None:
        structure.profile = obs.BuildProfile(root)
    return structure


def _assemble_metadata_report(
    *,
    database: StringDatabase,
    params: ConstructionParams,
    ell: int,
    delta_cap: int,
    accountant: PrivacyAccountant,
    candidate_set: CandidateSet,
    nodes_before: int,
    nodes_after: int,
    num_paths: int,
    max_path_length: int,
    roots_error: float,
    sums_error: float,
    prune_threshold: float,
) -> tuple[StructureMetadata, dict]:
    """Metadata and report shared verbatim by both pipelines (every value is
    derived from the same deterministic quantities, so the two backends
    produce identical payloads and digests)."""
    alpha_counts = roots_error + sums_error
    construction_name = (
        "theorem-1 (pure DP)" if params.is_pure else "theorem-2 (approx DP)"
    )
    metadata = StructureMetadata(
        epsilon=params.budget.epsilon,
        delta=params.budget.delta,
        beta=params.beta,
        delta_cap=delta_cap,
        max_length=ell,
        num_documents=database.num_documents,
        alphabet_size=database.alphabet_size,
        error_bound=alpha_counts,
        threshold=prune_threshold,
        construction=construction_name,
        count_backend=params.count_backend,
    )
    report = {
        "candidate_size": candidate_set.size,
        "candidate_alpha": candidate_set.alpha,
        "candidate_threshold": candidate_set.threshold,
        "trie_nodes_before_pruning": nodes_before,
        "trie_nodes_after_pruning": nodes_after,
        "num_heavy_paths": num_paths,
        "max_heavy_path_length": max_path_length,
        "roots_error_bound": roots_error,
        "prefix_sums_error_bound": sums_error,
        "absent_pattern_bound": max(
            3.0 * candidate_set.alpha, prune_threshold + alpha_counts
        ),
        "privacy_spent_epsilon": accountant.total_epsilon,
        "privacy_spent_delta": accountant.total_delta,
    }
    return metadata, report


def _finish_structure_object(
    database: StringDatabase,
    params: ConstructionParams,
    rng: np.random.Generator,
    candidate_set: CandidateSet,
    *,
    stage_budget: PrivacyBudget,
    accountant: PrivacyAccountant,
    ell: int,
    delta_cap: int,
    beta_stage: float,
) -> PrivateCountingTrie:
    """Steps 2-6 on the linked-object reference pipeline."""
    # ------------------------------------------------------------------
    # Step 2: candidate trie and heavy path decomposition.
    # ------------------------------------------------------------------
    with obs.span("trie_build") as sp:
        trie = Trie()
        for pattern in sorted(candidate_set.all_strings()):
            trie.insert(pattern)
        if sp is not None:
            sp.attrs["nodes"] = trie.num_nodes
    with obs.span("annotate"):
        annotate_trie_with_exact_counts(
            trie, database, delta_cap, backend=params.count_backend
        )
    with obs.span("decomposition"):
        decomposition = HeavyPathDecomposition(
            trie.root, lambda node: list(node.children.values())
        )
    trie_size = trie.num_nodes
    log_trie = math.floor(math.log2(max(2, trie_size))) + 1

    # ------------------------------------------------------------------
    # Step 3: noisy counts of the heavy-path roots.
    # A document of length <= ell influences the counts of at most
    # ell * (log|T_C| + 1) heavy-path roots in total (Lemma 10), hence the
    # L1 sensitivity is 2 ell (log|T_C| + 1); every coordinate changes by at
    # most Delta, so the L2 sensitivity is sqrt(L1 * Delta) (Lemma 14).
    # ------------------------------------------------------------------
    with obs.span("noise", paths=len(decomposition.paths)):
        roots_mechanism = _stage_mechanism(stage_budget, params.noiseless)
        roots = decomposition.path_roots()
        roots_l1 = 2.0 * ell * log_trie
        roots_l2 = math.sqrt(roots_l1 * delta_cap)
        root_values = np.array([node.count for node in roots], dtype=np.float64)
        noisy_roots = roots_mechanism.randomize(
            root_values, l1_sensitivity=roots_l1, l2_sensitivity=roots_l2, rng=rng
        )
        accountant.spend(
            "heavy-path roots",
            roots_mechanism.epsilon if not params.noiseless else 0.0,
            roots_mechanism.delta if not params.noiseless else 0.0,
        )
        roots_error = roots_mechanism.sup_error_bound(
            max(1, len(roots)),
            beta_stage,
            l1_sensitivity=roots_l1,
            l2_sensitivity=roots_l2,
        )

        # --------------------------------------------------------------
        # Step 4: noisy prefix sums of the difference sequences along every
        # heavy path (binary-tree mechanism; Lemmas 11/18).
        # --------------------------------------------------------------
        sums_mechanism = _stage_mechanism(stage_budget, params.noiseless)
        sequences = decomposition.difference_sequences(lambda node: node.count)
        max_sequence_length = max(1, max((len(seq) for seq in sequences), default=0))
        prefix_mechanism = PrefixSumMechanism(
            sums_mechanism,
            total_l1_sensitivity=2.0 * ell * log_trie,
            per_sequence_l1_sensitivity=2.0 * delta_cap,
            max_length=max_sequence_length,
        )
        noisy_sums = prefix_mechanism.release_many(sequences, rng)
        accountant.spend(
            "difference-sequence prefix sums",
            sums_mechanism.epsilon if not params.noiseless else 0.0,
            sums_mechanism.delta if not params.noiseless else 0.0,
        )
        sums_error = prefix_mechanism.sup_error_bound(
            max(1, len(sequences)), beta_stage
        )

        # --------------------------------------------------------------
        # Step 5: combine into per-node noisy counts.
        # --------------------------------------------------------------
        for path, root_estimate, sums in zip(
            decomposition.paths, noisy_roots, noisy_sums
        ):
            for offset, node in enumerate(path.nodes):
                if offset == 0:
                    node.noisy_count = float(root_estimate)
                else:
                    node.noisy_count = float(root_estimate) + sums.prefix(offset)

    alpha_counts = roots_error + sums_error
    prune_threshold = (
        params.threshold if params.threshold is not None else 2.0 * alpha_counts
    )

    # ------------------------------------------------------------------
    # Step 6: prune subtrees with small noisy counts (post-processing).
    # ------------------------------------------------------------------
    nodes_before_pruning = trie.num_nodes
    with obs.span("prune") as sp:
        _prune(trie, prune_threshold)
        if sp is not None:
            sp.attrs["removed"] = nodes_before_pruning - trie.num_nodes

    metadata, report = _assemble_metadata_report(
        database=database,
        params=params,
        ell=ell,
        delta_cap=delta_cap,
        accountant=accountant,
        candidate_set=candidate_set,
        nodes_before=nodes_before_pruning,
        nodes_after=trie.num_nodes,
        num_paths=len(decomposition.paths),
        max_path_length=decomposition.max_path_length(),
        roots_error=roots_error,
        sums_error=sums_error,
        prune_threshold=prune_threshold,
    )
    return PrivateCountingTrie(trie=trie, metadata=metadata, report=report)


def _finish_structure_array(
    database: StringDatabase,
    params: ConstructionParams,
    rng: np.random.Generator,
    candidate_set: CandidateSet,
    *,
    stage_budget: PrivacyBudget,
    accountant: PrivacyAccountant,
    ell: int,
    delta_cap: int,
    beta_stage: float,
) -> PrivateCountingTrie:
    """Steps 2-6 on the array-native pipeline — bit-identical to the object
    finisher (same candidate trie, same heavy-path order, same RNG draws,
    same float operations), with every intermediate a flat numpy array."""
    # ------------------------------------------------------------------
    # Step 2: radix-build the candidate trie over the lexsorted candidate
    # matrix, then decompose it.
    # ------------------------------------------------------------------
    with obs.span("trie_build") as sp:
        matrix, row_lengths = _candidate_matrix(candidate_set)
        trie = build_array_trie(matrix, row_lengths)
        if sp is not None:
            sp.attrs["nodes"] = trie.num_nodes
    with obs.span("annotate"):
        counts = annotate_counts_array(
            trie, database, delta_cap, count_backend=params.count_backend
        )
    with obs.span("decomposition"):
        decomposition = FlatHeavyPathDecomposition(
            trie.parents, trie.depths, trie.child_start, trie.child_end, trie.children
        )
    trie_size = trie.num_nodes
    log_trie = math.floor(math.log2(max(2, trie_size))) + 1

    # ------------------------------------------------------------------
    # Steps 3-5: noisy roots, noisy prefix sums, combine — one vectorized
    # pass each, drawing noise in exactly the object pipeline's order
    # (roots vector first, then the per-path interval draws path-major).
    # ------------------------------------------------------------------
    with obs.span("noise", paths=int(decomposition.num_paths)):
        roots_mechanism = _stage_mechanism(stage_budget, params.noiseless)
        roots_l1 = 2.0 * ell * log_trie
        roots_l2 = math.sqrt(roots_l1 * delta_cap)
        root_values = counts[decomposition.path_start]
        noisy_roots = roots_mechanism.randomize(
            root_values, l1_sensitivity=roots_l1, l2_sensitivity=roots_l2, rng=rng
        )
        accountant.spend(
            "heavy-path roots",
            roots_mechanism.epsilon if not params.noiseless else 0.0,
            roots_mechanism.delta if not params.noiseless else 0.0,
        )
        roots_error = roots_mechanism.sup_error_bound(
            max(1, decomposition.num_paths),
            beta_stage,
            l1_sensitivity=roots_l1,
            l2_sensitivity=roots_l2,
        )

        sums_mechanism = _stage_mechanism(stage_budget, params.noiseless)
        differences = decomposition.difference_sequences_flat(counts)
        difference_offsets = decomposition.difference_offsets()
        max_sequence_length = max(
            1,
            int(decomposition.path_length.max() - 1) if decomposition.num_paths else 0,
        )
        prefix_mechanism = PrefixSumMechanism(
            sums_mechanism,
            total_l1_sensitivity=2.0 * ell * log_trie,
            per_sequence_l1_sensitivity=2.0 * delta_cap,
            max_length=max_sequence_length,
        )
        prefix_values = prefix_mechanism.release_many_flat(
            differences, difference_offsets, rng
        )
        accountant.spend(
            "difference-sequence prefix sums",
            sums_mechanism.epsilon if not params.noiseless else 0.0,
            sums_mechanism.delta if not params.noiseless else 0.0,
        )
        sums_error = prefix_mechanism.sup_error_bound(
            max(1, decomposition.num_paths), beta_stage
        )

        path_of = decomposition.path_id
        offset = decomposition.offset_on_path
        noisy = noisy_roots[path_of].astype(np.float64, copy=True)
        deeper = offset > 0
        noisy[deeper] = noisy[deeper] + prefix_values[
            difference_offsets[path_of[deeper]] + offset[deeper] - 1
        ]

    alpha_counts = roots_error + sums_error
    prune_threshold = (
        params.threshold if params.threshold is not None else 2.0 * alpha_counts
    )

    # ------------------------------------------------------------------
    # Step 6: prune — a node survives iff it and all its ancestors clear
    # the threshold, computed top-down one level slice at a time.
    # ------------------------------------------------------------------
    with obs.span("prune") as sp:
        keep = np.zeros(trie.num_nodes, dtype=bool)
        keep[0] = True
        clears = noisy >= prune_threshold
        for depth in range(1, trie.max_depth + 1):
            lo, hi = int(trie.level_bounds[depth]), int(trie.level_bounds[depth + 1])
            keep[lo:hi] = keep[trie.parents[lo:hi]] & clears[lo:hi]
        nodes_after = int(keep.sum())
        if sp is not None:
            sp.attrs["removed"] = trie_size - nodes_after

    metadata, report = _assemble_metadata_report(
        database=database,
        params=params,
        ell=ell,
        delta_cap=delta_cap,
        accountant=accountant,
        candidate_set=candidate_set,
        nodes_before=trie_size,
        nodes_after=nodes_after,
        num_paths=decomposition.num_paths,
        max_path_length=decomposition.max_path_length(),
        roots_error=roots_error,
        sums_error=sums_error,
        prune_threshold=prune_threshold,
    )
    with obs.span("materialize"):
        linked, compiled_view = materialize_structure(
            trie, counts, noisy, keep, metadata, report
        )
    structure = PrivateCountingTrie(trie=linked, metadata=metadata, report=report)
    structure._batch_view = compiled_view
    return structure


def _candidate_matrix(candidate_set: CandidateSet) -> tuple[np.ndarray, np.ndarray]:
    """The full candidate set as one lexsorted PAD-padded code matrix.

    Reuses the per-length matrices the array candidate stage attached;
    caller-supplied candidate sets (ablations, tests) fall back to one bulk
    encode of the string union.  Rows are distinct (per-length matrices are
    deduplicated and lengths never collide), so the radix trie build sees
    exactly the object pipeline's ``sorted(all_strings())`` insertions.
    """
    if candidate_set.matrices is None:
        matrix, lengths = pack_strings(sorted(candidate_set.all_strings()))
        return matrix, lengths
    per_length = [
        block for block in candidate_set.matrices.values() if block.shape[0]
    ]
    if not per_length:
        return np.zeros((0, 0), dtype=np.int32), np.zeros(0, dtype=np.int64)
    width = max(block.shape[1] for block in per_length)
    total = sum(block.shape[0] for block in per_length)
    matrix = np.full((total, width), PAD, dtype=np.int32)
    lengths = np.empty(total, dtype=np.int64)
    cursor = 0
    for block in per_length:
        rows = block.shape[0]
        matrix[cursor : cursor + rows, : block.shape[1]] = block
        lengths[cursor : cursor + rows] = block.shape[1]
        cursor += rows
    order = lexsort_rows(matrix)
    return matrix[order], lengths[order]


def _prune(trie: Trie, threshold: float) -> None:
    """Remove every subtree whose root has a noisy count below the threshold
    (the trie root itself is never removed)."""
    stack = [trie.root]
    while stack:
        node = stack.pop()
        for child in list(node.children.values()):
            noisy = child.noisy_count if child.noisy_count is not None else -math.inf
            if noisy < threshold:
                trie.delete_subtree(child)
            else:
                stack.append(child)


# ----------------------------------------------------------------------
# Deprecated named wrappers matching the paper's theorem statements (the
# pre-repro.api public surface; kind "heavy-path" in the registry).
# ----------------------------------------------------------------------
def build_theorem1_structure(
    database: StringDatabase,
    epsilon: float,
    *,
    beta: float = 0.05,
    delta_cap: int | None = None,
    rng: np.random.Generator | None = None,
    threshold: float | None = None,
) -> PrivateCountingTrie:
    """Theorem 1: the epsilon-differentially private structure.

    Deprecated; prefer
    ``Dataset.from_database(db).with_budget(epsilon).build("heavy-path")``.
    Results are identical under the same rng.
    """
    warn_deprecated(
        "build_theorem1_structure",
        'Dataset...with_budget(epsilon).build("heavy-path")',
    )
    params = ConstructionParams.pure(
        epsilon, beta=beta, delta_cap=delta_cap, threshold=threshold
    )
    return build_private_counting_structure(database, params, rng=rng)


def build_theorem2_structure(
    database: StringDatabase,
    epsilon: float,
    delta: float,
    *,
    beta: float = 0.05,
    delta_cap: int | None = None,
    rng: np.random.Generator | None = None,
    threshold: float | None = None,
) -> PrivateCountingTrie:
    """Theorem 2: the (epsilon, delta)-differentially private structure.

    Deprecated; prefer
    ``Dataset.from_database(db).with_budget(epsilon, delta).build("heavy-path")``.
    Results are identical under the same rng.
    """
    warn_deprecated(
        "build_theorem2_structure",
        'Dataset...with_budget(epsilon, delta).build("heavy-path")',
    )
    params = ConstructionParams.approximate(
        epsilon, delta, beta=beta, delta_cap=delta_cap, threshold=threshold
    )
    return build_private_counting_structure(database, params, rng=rng)
