"""Array primitives of the ``build_backend="array"`` construction pipeline.

The object pipeline builds Python ``TrieNode`` graphs and walks them one node
at a time; this module supplies the numpy building blocks that let the same
construction run as a handful of flat-array passes:

* **Code matrices** — every candidate set is an ``(k, length)`` int32 matrix
  of Unicode code points (:func:`pack_strings` / :func:`decode_rows`), padded
  with :data:`PAD` (which sorts before every real code, so a padded
  ``lexsort`` reproduces Python's string order exactly).
* **Sort-join counting** (:class:`SortJoinCounter`) — exact ``count_Delta``
  for a uniform-length pattern batch by sorting the corpus windows of that
  length once and binary-searching the patterns into them; bit-identical to
  the :mod:`repro.counting` engines (integers are integers), typically much
  faster than building a per-batch automaton.
* **Radix trie construction** (:func:`build_array_trie`) — the candidate
  trie as CSR-style arrays built in one pass over the lexsorted candidate
  matrix; node patterns are slices of the sorted matrix, never
  ``node.string()`` parent walks.
* **Suffix/prefix joins** (:func:`match_overlap_pairs`) — the hash-bucketed
  replacement for the O(k^2) LCE double loop of the completion step.
* **Materialization** (:func:`materialize_structure`) — the only step that
  leaves numpy: the pruned arrays become the final linked ``Trie`` plus a
  ready-to-serve :class:`~repro.serving.compiled.CompiledTrie` view sharing
  the same layout.

Everything here is exact bookkeeping — no randomness, no privacy logic; the
mechanisms are applied by the callers in :mod:`repro.core.candidate_set` and
:mod:`repro.core.construction`, in the same order as the object pipeline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.database import StringDatabase

__all__ = [
    "PAD",
    "ArrayTrie",
    "SortJoinCounter",
    "build_array_trie",
    "decode_rows",
    "dedup_rows",
    "lexsort_rows",
    "match_overlap_pairs",
    "pack_strings",
    "row_bytes",
]

#: Padding code for positions past a string's end.  Any real code point is
#: non-negative, so PAD sorts first — exactly Python's "prefix before
#: extension" string order under a padded lexsort.
PAD = -1


# ----------------------------------------------------------------------
# String <-> code-matrix codecs
# ----------------------------------------------------------------------
def pack_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Encode ``strings`` as a PAD-padded ``(k, max_len)`` int32 code matrix
    plus the vector of true lengths.

    One bulk UTF-32 encode replaces the per-character ``np.fromiter`` loops;
    the codes are raw ``ord`` values, so lexicographic comparisons on rows
    match Python string comparisons.
    """
    k = len(strings)
    lengths = np.fromiter(map(len, strings), dtype=np.int64, count=k)
    max_len = int(lengths.max()) if k else 0
    matrix = np.full((k, max_len), PAD, dtype=np.int32)
    if k and max_len:
        codes = np.frombuffer(
            "".join(strings).encode("utf-32-le"), dtype=np.uint32
        ).astype(np.int32)
        mask = np.arange(max_len)[None, :] < lengths[:, None]
        matrix[mask] = codes
    return matrix, lengths


def decode_rows(matrix: np.ndarray, lengths: np.ndarray | None = None) -> list[str]:
    """Decode code-matrix rows back into strings with one bulk UTF-32 decode.

    ``lengths`` gives each row's true length; omitted means every row spans
    the full matrix width (no padding).
    """
    k, width = matrix.shape
    if k == 0:
        return []
    if lengths is None:
        joined = matrix.astype("<u4").tobytes().decode("utf-32-le")
        return [joined[i * width : (i + 1) * width] for i in range(k)]
    mask = np.arange(width)[None, :] < np.asarray(lengths)[:, None]
    joined = matrix[mask].astype("<u4").tobytes().decode("utf-32-le")
    bounds = np.concatenate(([0], np.cumsum(lengths))).tolist()
    return [joined[bounds[i] : bounds[i + 1]] for i in range(k)]


def row_bytes(matrix: np.ndarray) -> np.ndarray:
    """Each row as one fixed-width big-endian byte string (dtype ``S4w``).

    Byte-wise comparisons on the result order rows exactly like
    lexicographic comparison of their code points, which makes whole rows
    sortable / searchable with numpy's string machinery.  Rows must be
    unpadded (uniform width).
    """
    k, width = matrix.shape
    if k == 0 or width == 0:
        return np.zeros(k, dtype="S1")
    buffer = np.ascontiguousarray(matrix).astype(">u4").tobytes()
    return np.frombuffer(buffer, dtype=f"S{4 * width}")


def lexsort_rows(matrix: np.ndarray) -> np.ndarray:
    """Indices sorting the matrix rows lexicographically (first column most
    significant) — with PAD padding this is Python's string sort order."""
    if matrix.shape[0] <= 1 or matrix.shape[1] == 0:
        return np.arange(matrix.shape[0])
    return np.lexsort(matrix.T[::-1])


def dedup_rows(matrix: np.ndarray) -> np.ndarray:
    """Sort the rows lexicographically and drop duplicates — the array form
    of ``sorted(set(strings))`` for uniform-length strings."""
    if matrix.shape[0] <= 1:
        return matrix.copy()
    ordered = matrix[lexsort_rows(matrix)]
    keep = np.empty(ordered.shape[0], dtype=bool)
    keep[0] = True
    keep[1:] = (ordered[1:] != ordered[:-1]).any(axis=1)
    return ordered[keep]


# ----------------------------------------------------------------------
# Suffix/prefix overlap joins
# ----------------------------------------------------------------------
def match_overlap_pairs(
    suffix_keys: np.ndarray, prefix_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``suffix_keys[i] == prefix_keys[j]``.

    Keys are compared exactly (byte keys from :func:`row_bytes`), so this is
    the hash-bucketed equivalent of asking an LCE structure whether string
    ``i``'s suffix equals string ``j``'s prefix — O(k log k) instead of the
    O(k^2) double loop.  Pairs come out ``i``-major with ``j`` ascending
    inside each ``i`` (the double loop's order).
    """
    if suffix_keys.size == 0 or prefix_keys.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    _, inverse = np.unique(
        np.concatenate([suffix_keys, prefix_keys]), return_inverse=True
    )
    suffix_labels = inverse[: suffix_keys.size]
    prefix_labels = inverse[suffix_keys.size :]
    by_label = np.argsort(prefix_labels, kind="stable")
    sorted_labels = prefix_labels[by_label]
    group_lo = np.searchsorted(sorted_labels, suffix_labels, side="left")
    group_hi = np.searchsorted(sorted_labels, suffix_labels, side="right")
    counts = group_hi - group_lo
    total = int(counts.sum())
    left = np.repeat(np.arange(suffix_keys.size), counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    right = by_label[np.repeat(group_lo, counts) + within]
    return left, right


# ----------------------------------------------------------------------
# Sort-join exact counting
# ----------------------------------------------------------------------
class SortJoinCounter:
    """Exact ``count_Delta`` for uniform-length pattern batches.

    For a batch of width-``w`` patterns the corpus has at most ``N`` windows
    of width ``w``; sorting those windows once and binary-searching every
    pattern answers the whole batch in ``O((N + k) log N)`` C-level work.
    Per-document capping folds runs of equal ``(window, document)`` pairs
    and caps each run at ``Delta``.  Counts are integers, hence bitwise
    identical to every :mod:`repro.counting` engine
    (``tests/core/test_build_backends.py`` asserts this) — which is what
    lets the array pipeline use it under ``count_backend="auto"`` without
    perturbing any released value.
    """

    def __init__(self, database: StringDatabase) -> None:
        self.database = database
        documents = database.documents
        self._codes = np.frombuffer(
            "".join(documents).encode("utf-32-le"), dtype=np.uint32
        ).astype(np.int32)
        doc_lengths = np.fromiter(
            map(len, documents), dtype=np.int64, count=len(documents)
        )
        self._doc_of = np.repeat(np.arange(len(documents)), doc_lengths)
        self._max_doc_length = int(doc_lengths.max()) if len(documents) else 0
        #: width -> (sorted window keys, sorted window docs), LRU-evicted
        #: once the cached arrays exceed the byte budget below.
        self._window_cache: "OrderedDict[int, tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._window_cache_bytes = 0

    @classmethod
    def shared(cls, database: StringDatabase) -> "SortJoinCounter":
        """The database's cached counter (one corpus encode per database;
        the candidate, annotation and q-gram stages of a build all reuse
        it — and with it the sorted-window cache below)."""
        counter = getattr(database, "_sortjoin_counter", None)
        if counter is None:
            counter = cls(database)
            database._sortjoin_counter = counter
        return counter

    #: cap on the cached sorted-window arrays (LRU beyond this).  Power-of-
    #: two widths are the ones every build needs twice (doubling levels,
    #: then trie annotation one stage later); on corpora large enough to
    #: blow this budget the duplicate sort is cheaper than pinning gigabytes
    #: on a long-lived database object.
    WINDOW_CACHE_BUDGET = 128 << 20

    def _sorted_windows(self, width: int) -> tuple[np.ndarray, np.ndarray]:
        """Sorted byte keys and document ids of every width-``width`` corpus
        window.  Power-of-two widths are memoized (within the byte budget):
        the doubling levels count them and the trie annotation counts them
        again one stage later, while every other width is needed at most
        once per build (so caching it would only grow memory)."""
        cached = self._window_cache.get(width)
        if cached is not None:
            self._window_cache.move_to_end(width)
            return cached
        total = self._codes.size
        windows = np.lib.stride_tricks.sliding_window_view(self._codes, width)
        # A window is valid when it stays inside one document.
        valid = self._doc_of[: total - width + 1] == self._doc_of[width - 1 :]
        window_keys = row_bytes(windows[valid])
        window_docs = self._doc_of[: total - width + 1][valid]
        if window_keys.size:
            order = np.argsort(window_keys, kind="stable")
            window_keys = window_keys[order]
            window_docs = window_docs[order]
        result = (window_keys, window_docs)
        nbytes = int(window_keys.nbytes + window_docs.nbytes)
        if width & (width - 1) == 0 and nbytes <= self.WINDOW_CACHE_BUDGET:
            self._window_cache[width] = result
            self._window_cache_bytes += nbytes
            while self._window_cache_bytes > self.WINDOW_CACHE_BUDGET:
                _, (old_keys, old_docs) = self._window_cache.popitem(last=False)
                self._window_cache_bytes -= int(old_keys.nbytes + old_docs.nbytes)
        return result

    def counts(self, patterns: np.ndarray, delta_cap: int) -> np.ndarray:
        """Counts for a ``(k, w)`` unpadded pattern code matrix."""
        k, width = patterns.shape
        if k == 0:
            return np.zeros(0, dtype=np.int64)
        if width == 0:
            empty = sum(
                min(len(document), delta_cap) for document in self.database.documents
            )
            return np.full(k, empty, dtype=np.int64)
        if width > self._max_doc_length:
            return np.zeros(k, dtype=np.int64)
        window_keys, window_docs = self._sorted_windows(width)
        if window_keys.size == 0:
            return np.zeros(k, dtype=np.int64)
        pattern_keys = row_bytes(patterns)
        lo = np.searchsorted(window_keys, pattern_keys, side="left")
        hi = np.searchsorted(window_keys, pattern_keys, side="right")
        if delta_cap >= self._max_doc_length:
            return (hi - lo).astype(np.int64)
        # Runs of equal (window, document); each run is capped at Delta.
        new_run = np.empty(window_keys.size, dtype=bool)
        new_run[0] = True
        new_run[1:] = (window_keys[1:] != window_keys[:-1]) | (
            window_docs[1:] != window_docs[:-1]
        )
        run_starts = np.flatnonzero(new_run)
        run_lengths = np.diff(np.append(run_starts, window_keys.size))
        capped = np.concatenate(
            ([0], np.cumsum(np.minimum(run_lengths, delta_cap)))
        )
        run_lo = np.searchsorted(run_starts, lo, side="left")
        run_hi = np.searchsorted(run_starts, hi, side="left")
        return (capped[run_hi] - capped[run_lo]).astype(np.int64)


# ----------------------------------------------------------------------
# Radix trie construction over a lexsorted candidate matrix
# ----------------------------------------------------------------------
@dataclass
class ArrayTrie:
    """The candidate trie as flat arrays (node ``0`` is the root).

    Node ids are depth-major — all depth-1 nodes (rows ascending, i.e.
    lexicographic), then depth-2, ... — so every depth is the contiguous id
    slice ``level_bounds[d]:level_bounds[d + 1]``.  Edges are stored in
    child-id order (``children[e]`` is node ``e + 1``), which groups them by
    parent with siblings in ascending label order.  Node ``v`` spells
    ``matrix[node_row[v], :depths[v]]`` — one flat codes buffer backs every
    node pattern.
    """

    num_nodes: int
    parents: np.ndarray
    depths: np.ndarray
    char_codes: np.ndarray
    child_start: np.ndarray
    child_end: np.ndarray
    children: np.ndarray
    node_row: np.ndarray
    level_bounds: np.ndarray
    matrix: np.ndarray
    row_lengths: np.ndarray

    @property
    def max_depth(self) -> int:
        return int(self.level_bounds.size - 2)

    def level(self, depth: int) -> np.ndarray:
        """Node ids at string depth ``depth`` (a contiguous range)."""
        return np.arange(
            int(self.level_bounds[depth]), int(self.level_bounds[depth + 1])
        )

    def level_patterns(self, depth: int) -> np.ndarray:
        """The code matrix of the depth-``depth`` node patterns (one row per
        node, sliced straight from the sorted candidate matrix)."""
        lo, hi = int(self.level_bounds[depth]), int(self.level_bounds[depth + 1])
        return self.matrix[self.node_row[lo:hi], :depth]

    def node_strings(self) -> list[str]:
        """Every non-root node's pattern, in node-id order (depth-major)."""
        patterns: list[str] = []
        for depth in range(1, self.max_depth + 1):
            patterns.extend(decode_rows(self.level_patterns(depth)))
        return patterns


def build_array_trie(matrix: np.ndarray, lengths: np.ndarray) -> ArrayTrie:
    """Build the trie of all prefixes of the (distinct, lexsorted) rows.

    One radix pass: consecutive-row LCPs mark, per depth, exactly the rows
    whose depth-``d`` prefix is new; those prefixes are the depth-``d``
    nodes, parents fall out of a ``searchsorted`` against the previous
    depth's creation rows, and the child CSR slices fall out of the
    depth-major id layout.  No per-node Python work.
    """
    num_rows, width = matrix.shape
    if num_rows == 0 or width == 0:
        return ArrayTrie(
            num_nodes=1,
            parents=np.full(1, -1, dtype=np.int64),
            depths=np.zeros(1, dtype=np.int64),
            char_codes=np.full(1, PAD, dtype=np.int64),
            child_start=np.zeros(1, dtype=np.int64),
            child_end=np.zeros(1, dtype=np.int64),
            children=np.zeros(0, dtype=np.int64),
            node_row=np.zeros(1, dtype=np.int64),
            level_bounds=np.array([0, 1], dtype=np.int64),
            matrix=matrix,
            row_lengths=lengths,
        )
    lcp = np.zeros(num_rows, dtype=np.int64)
    if num_rows > 1:
        equal = matrix[1:] == matrix[:-1]
        lcp[1:] = np.cumprod(equal, axis=1).sum(axis=1)
    creation_rows: list[np.ndarray] = []
    for depth in range(1, width + 1):
        creation_rows.append(np.flatnonzero((lengths >= depth) & (lcp < depth)))
    while creation_rows and creation_rows[-1].size == 0:
        creation_rows.pop()
    max_depth = len(creation_rows)
    counts = np.array([rows.size for rows in creation_rows], dtype=np.int64)
    level_bounds = np.concatenate(([0, 1], 1 + np.cumsum(counts))).astype(np.int64)
    num_nodes = int(level_bounds[-1])

    parents = np.full(num_nodes, -1, dtype=np.int64)
    depths = np.zeros(num_nodes, dtype=np.int64)
    char_codes = np.full(num_nodes, PAD, dtype=np.int64)
    node_row = np.zeros(num_nodes, dtype=np.int64)
    for depth in range(1, max_depth + 1):
        lo, hi = int(level_bounds[depth]), int(level_bounds[depth + 1])
        rows = creation_rows[depth - 1]
        node_row[lo:hi] = rows
        depths[lo:hi] = depth
        char_codes[lo:hi] = matrix[rows, depth - 1]
        if depth == 1:
            parents[lo:hi] = 0
        else:
            previous = creation_rows[depth - 2]
            covering = np.searchsorted(previous, rows, side="right") - 1
            parents[lo:hi] = level_bounds[depth - 1] + covering

    # Edges in child-id order are grouped by parent (parents are
    # nondecreasing inside every depth block and blocks never interleave),
    # so the CSR slices come from searchsorted per depth block.
    child_start = np.zeros(num_nodes, dtype=np.int64)
    child_end = np.zeros(num_nodes, dtype=np.int64)
    children = np.arange(1, num_nodes, dtype=np.int64)
    for depth in range(1, max_depth + 1):
        lo, hi = int(level_bounds[depth]), int(level_bounds[depth + 1])
        block_parents = parents[lo:hi]
        parent_lo = int(level_bounds[depth - 1])
        parent_hi = int(level_bounds[depth])
        parent_ids = np.arange(parent_lo, parent_hi)
        child_start[parent_lo:parent_hi] = (lo - 1) + np.searchsorted(
            block_parents, parent_ids, side="left"
        )
        child_end[parent_lo:parent_hi] = (lo - 1) + np.searchsorted(
            block_parents, parent_ids, side="right"
        )
    return ArrayTrie(
        num_nodes=num_nodes,
        parents=parents,
        depths=depths,
        char_codes=char_codes,
        child_start=child_start,
        child_end=child_end,
        children=children,
        node_row=node_row,
        level_bounds=level_bounds,
        matrix=matrix,
        row_lengths=lengths,
    )


def annotate_counts_array(
    trie: ArrayTrie,
    database: StringDatabase,
    delta_cap: int,
    *,
    count_backend: str = "auto",
) -> np.ndarray:
    """Exact ``count_Delta`` of every node pattern, as a float64 vector.

    ``"auto"`` routes every depth level (a uniform-length batch sliced off
    the sorted candidate matrix) through :class:`SortJoinCounter`; a
    concrete backend name is honored by decoding the node patterns into one
    :meth:`~repro.core.database.StringDatabase.count_many` batch.  Counts
    are integers either way, so the choice never changes a released value.
    """
    counts = np.zeros(trie.num_nodes, dtype=np.float64)
    counts[0] = float(
        sum(min(len(document), delta_cap) for document in database.documents)
    )
    if trie.num_nodes == 1:
        return counts
    if count_backend == "auto":
        counter = SortJoinCounter.shared(database)
        for depth in range(1, trie.max_depth + 1):
            lo, hi = int(trie.level_bounds[depth]), int(trie.level_bounds[depth + 1])
            counts[lo:hi] = counter.counts(trie.level_patterns(depth), delta_cap)
    else:
        counts[1:] = database.count_many(
            trie.node_strings(), delta_cap, backend=count_backend
        )
    return counts


# ----------------------------------------------------------------------
# Materialization: pruned arrays -> linked trie + compiled serving view
# ----------------------------------------------------------------------
def materialize_structure(
    trie: ArrayTrie,
    counts: np.ndarray,
    noisy: np.ndarray,
    keep: np.ndarray,
    metadata,
    report: dict,
):
    """Turn the pruned array build into the final linked ``Trie`` and a
    ready-to-serve compiled view sharing the array shape.

    Returns ``(linked_trie, compiled_view)``.  The linked trie is the only
    object-graph allocation of the array pipeline (one node per *surviving*
    pattern); the compiled view is assembled directly from the survivor
    arrays — the zero-copy handoff behind
    :meth:`repro.core.private_trie.PrivateCountingTrie.compiled`.
    """
    from repro.serving.compiled import CompiledTrie
    from repro.strings.trie import Trie, TrieNode

    survivors = np.flatnonzero(keep)
    new_id = np.cumsum(keep) - 1
    non_root = survivors[1:]
    parent_ids = new_id[trie.parents[non_root]]
    labels = decode_rows(trie.char_codes[non_root].reshape(-1, 1).astype(np.int32))

    linked = Trie()
    linked.root.count = float(counts[0])
    linked.root.noisy_count = float(noisy[0])
    nodes: list[TrieNode] = [linked.root]
    node_counts = counts[non_root].tolist()
    node_noisy = noisy[non_root].tolist()
    for position, parent_index in enumerate(parent_ids.tolist()):
        parent = nodes[parent_index]
        node = TrieNode(labels[position], parent)
        parent.children[labels[position]] = node
        node.count = node_counts[position]
        node.noisy_count = node_noisy[position]
        nodes.append(node)
    linked._num_nodes = len(nodes)

    # Compiled view straight from the survivor arrays: depth-major ids with
    # ascending sibling labels keep edge keys globally sorted, which is the
    # layout CompiledTrie.batch_query requires.
    vocab_chars = sorted(set(labels))
    vocab = {char: code + 1 for code, char in enumerate(vocab_chars)}
    vocab_size = len(vocab) + 1
    num_survivors = int(survivors.size)
    parent_codes = np.zeros(num_survivors, dtype=np.int64)
    edge_keys = np.zeros(num_survivors - 1, dtype=np.int64)
    if num_survivors > 1:
        label_codes = np.fromiter(
            (vocab[label] for label in labels), dtype=np.int64, count=len(labels)
        )
        parent_codes[1:] = label_codes
        edge_keys = parent_ids * vocab_size + label_codes
    edge_targets = np.arange(1, num_survivors, dtype=np.int64)
    edge_parents = parent_ids if num_survivors > 1 else np.zeros(0, dtype=np.int64)
    compiled_child_start = np.searchsorted(
        edge_parents, np.arange(num_survivors), side="left"
    )
    compiled_child_end = np.searchsorted(
        edge_parents, np.arange(num_survivors), side="right"
    )
    compiled = CompiledTrie(
        counts=noisy[survivors].astype(np.float64),
        depths=trie.depths[survivors].astype(np.int64),
        parents=np.concatenate(([-1], parent_ids)).astype(np.int64),
        parent_codes=parent_codes,
        child_start=compiled_child_start.astype(np.int64),
        child_end=compiled_child_end.astype(np.int64),
        edge_keys=edge_keys,
        edge_labels=edge_keys % vocab_size if edge_keys.size else edge_keys.copy(),
        edge_targets=edge_targets,
        vocab=vocab,
        metadata=metadata,
        report=report,
        cache_size=0,
    )
    return linked, compiled
