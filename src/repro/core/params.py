"""Parameter objects for the private counting constructions.

:class:`ConstructionParams` bundles everything a construction algorithm needs
besides the database itself: the privacy budget, the failure probability of
the accuracy guarantee, the contribution cap ``Delta`` and a handful of
engineering knobs (threshold override, noiseless testing mode).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.counting import AUTO_BACKEND, BACKENDS
from repro.dp.composition import PrivacyBudget
from repro.exceptions import PrivacyParameterError

__all__ = [
    "ConstructionParams",
    "DOCUMENT_COUNT",
    "SUBSTRING_COUNT",
    "BUILD_BACKENDS",
    "AUTO_BUILD_BACKEND",
]

#: Contribution cap selecting Document Count semantics (``Delta = 1``).
DOCUMENT_COUNT = 1

#: Sentinel meaning "cap at the maximum document length" (Substring Count).
SUBSTRING_COUNT = None

#: Concrete construction pipelines: the linked-object reference pipeline and
#: the array-native (numpy) fast path.  Both produce bit-identical structures
#: (same noisy counts, same RNG draw order, same digests); the knob is purely
#: a matter of construction speed — see docs/PERFORMANCE.md.
BUILD_BACKENDS = ("object", "array")

#: The default selector; resolves to the array pipeline (never slower on
#: anything beyond toy inputs, identical output everywhere).
AUTO_BUILD_BACKEND = "auto"


@dataclass(frozen=True)
class ConstructionParams:
    """Parameters of a private counting-structure construction.

    Attributes
    ----------
    budget:
        Overall ``(epsilon, delta)`` privacy budget of the construction.
        ``delta = 0`` selects the pure-DP algorithms (Theorems 1 and 3);
        ``delta > 0`` selects the approximate-DP algorithms (Theorems 2
        and 4).
    beta:
        Failure probability of the accuracy guarantee (the error bound holds
        with probability at least ``1 - beta``).
    delta_cap:
        The contribution cap ``Delta`` of ``count_Delta``.  ``1`` gives
        Document Count, ``None`` gives Substring Count (``Delta = ell``).
    max_length:
        Declared maximum document length ``ell``.  When ``None`` the maximum
        length observed in the database is used.  For a formally correct
        privacy guarantee ``ell`` should be a public, data-independent bound.
    threshold:
        Optional override of the pruning / candidate threshold ``tau``.  The
        default is ``2 * alpha`` as in the paper.  Overriding the threshold
        does **not** affect privacy (it is post-processing of noisy values),
        only the accuracy guarantees.
    noiseless:
        Run the construction without noise.  **Not private**; intended for
        tests and for regenerating the paper's exact illustrative figures.
    candidate_budget_fraction:
        Fraction of the budget spent on the candidate-set stage; the
        remainder is split evenly between heavy-path roots and prefix sums.
        The paper uses 1/3.
    count_backend:
        Which :mod:`repro.counting` engine computes the exact counts the
        mechanisms then randomize: ``"auto"`` (per-batch selection),
        ``"naive"``, ``"suffix-array"`` or ``"aho-corasick"``.  Every
        backend returns identical counts, so this knob affects construction
        speed only — never privacy or accuracy.
    build_backend:
        Which construction pipeline runs: ``"object"`` (the linked
        ``TrieNode`` reference pipeline), ``"array"`` (the numpy-native fast
        path that keeps candidates, the candidate trie, heavy paths and
        noise application in flat arrays) or ``"auto"`` (resolves to
        ``"array"``).  The two pipelines are bit-identical — same noisy
        counts, same RNG draw order, same prune set, same
        ``content_digest()`` — so this knob affects construction speed only;
        see docs/PERFORMANCE.md.
    """

    budget: PrivacyBudget
    beta: float = 0.05
    delta_cap: int | None = SUBSTRING_COUNT
    max_length: int | None = None
    threshold: float | None = None
    noiseless: bool = False
    candidate_budget_fraction: float = 1.0 / 3.0
    count_backend: str = AUTO_BACKEND
    build_backend: str = AUTO_BUILD_BACKEND

    def __post_init__(self) -> None:
        if not 0 < self.beta < 1:
            raise PrivacyParameterError("beta must lie in (0, 1)")
        if self.delta_cap is not None and self.delta_cap < 1:
            raise PrivacyParameterError("delta_cap must be at least 1 (or None)")
        if self.max_length is not None and self.max_length < 1:
            raise PrivacyParameterError("max_length must be at least 1 (or None)")
        if not 0 < self.candidate_budget_fraction < 1:
            raise PrivacyParameterError(
                "candidate_budget_fraction must lie in (0, 1)"
            )
        if self.count_backend != AUTO_BACKEND and self.count_backend not in BACKENDS:
            raise PrivacyParameterError(
                f"count_backend must be one of {(AUTO_BACKEND,) + BACKENDS}, "
                f"got {self.count_backend!r}"
            )
        if (
            self.build_backend != AUTO_BUILD_BACKEND
            and self.build_backend not in BUILD_BACKENDS
        ):
            raise PrivacyParameterError(
                f"build_backend must be one of "
                f"{(AUTO_BUILD_BACKEND,) + BUILD_BACKENDS}, "
                f"got {self.build_backend!r}"
            )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def pure(cls, epsilon: float, **kwargs) -> "ConstructionParams":
        """Parameters for an epsilon-DP construction."""
        return cls(budget=PrivacyBudget(epsilon, 0.0), **kwargs)

    @classmethod
    def approximate(cls, epsilon: float, delta: float, **kwargs) -> "ConstructionParams":
        """Parameters for an (epsilon, delta)-DP construction."""
        return cls(budget=PrivacyBudget(epsilon, delta), **kwargs)

    def for_document_count(self) -> "ConstructionParams":
        """Same parameters with Document Count semantics (``Delta = 1``)."""
        return replace(self, delta_cap=DOCUMENT_COUNT)

    def for_substring_count(self) -> "ConstructionParams":
        """Same parameters with Substring Count semantics (``Delta = ell``)."""
        return replace(self, delta_cap=SUBSTRING_COUNT)

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------
    def resolve_max_length(self, observed_max_length: int) -> int:
        """The ``ell`` to use for a database whose longest document has the
        given length."""
        if self.max_length is not None:
            if observed_max_length > self.max_length:
                raise PrivacyParameterError(
                    "a document exceeds the declared maximum length"
                )
            return self.max_length
        return max(1, observed_max_length)

    def resolve_build_backend(self) -> str:
        """The concrete construction pipeline: ``"object"`` or ``"array"``
        (``"auto"`` resolves to the array fast path)."""
        if self.build_backend == AUTO_BUILD_BACKEND:
            return "array"
        return self.build_backend

    def resolve_delta_cap(self, ell: int) -> int:
        """The numeric contribution cap ``Delta`` for documents of length at
        most ``ell``."""
        if self.delta_cap is None:
            return ell
        return min(self.delta_cap, ell) if ell >= 1 else 1

    @property
    def is_pure(self) -> bool:
        return self.budget.is_pure
