"""Step 1 of the construction: differentially private candidate sets.

The construction algorithm first reduces the pattern universe from
``|Sigma|^ell`` to at most ``n^2 ell^3`` strings by computing a *candidate
set* ``C`` (Lemma 6 for pure DP, Lemma 15 for approximate DP):

1. Build sets ``P_1, P_2, P_4, ..., P_{2^j}`` (``j = floor(log2 ell)``) by
   length doubling: ``P_1`` keeps the letters whose noisy count reaches the
   threshold ``tau = 2 alpha``; ``P_{2^k}`` keeps the concatenations of two
   strings of ``P_{2^{k-1}}`` whose noisy count reaches ``tau``.  Crucially
   the noisy counts are computed for **all** concatenations — including
   strings that never occur in the database — which is what makes the
   released candidate set differentially private.
2. For every length ``m`` that is not a power of two, ``C_m`` contains every
   string of length ``m`` whose length-``2^k`` prefix and suffix
   (``k = floor(log2 m)``) both belong to ``P_{2^k}``.  These strings are
   found through suffix/prefix overlaps and require no further access to the
   database (post-processing).

The algorithm aborts with the paper's explicit *fail* outcome when a noisy
set grows beyond ``n * ell`` (this happens with negligible probability under
the accuracy event).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyAccountant, PrivacyBudget
from repro.dp.mechanisms import CountingMechanism, per_level_mechanism
from repro.exceptions import ConstructionAborted
from repro.strings.lce import CollectionLCE

__all__ = ["CandidateSet", "build_candidate_set", "candidate_alpha"]


@dataclass
class CandidateSet:
    """The candidate set ``C`` together with its construction metadata.

    Attributes
    ----------
    levels:
        ``levels[2**k]`` is the pruned set ``P_{2^k}`` (sorted lists for
        determinism).
    by_length:
        ``by_length[m]`` is ``C_m`` for every length ``m`` that was completed
        (powers of two map to the corresponding ``P`` set).
    alpha:
        The per-level noisy-count error bound used to set the threshold.
    threshold:
        The pruning threshold ``tau`` (``2 * alpha`` unless overridden).
    noisy_counts:
        Noisy counts of the strings that were *kept* during the doubling
        phase (useful for inspection; not needed by later stages).
    accountant:
        Privacy expenditure of the doubling phase.
    """

    levels: dict[int, list[str]]
    by_length: dict[int, list[str]]
    alpha: float
    threshold: float
    noisy_counts: dict[str, float] = field(default_factory=dict)
    accountant: PrivacyAccountant = field(default_factory=PrivacyAccountant)

    def all_strings(self) -> set[str]:
        """The full candidate set ``C`` (union over all lengths)."""
        result: set[str] = set()
        for strings in self.by_length.values():
            result.update(strings)
        return result

    @property
    def size(self) -> int:
        return len(self.all_strings())

    def max_level_length(self) -> int:
        return max(self.levels, default=0)


def candidate_alpha(
    database_size: int,
    ell: int,
    alphabet_size: int,
    mechanism: CountingMechanism,
    beta_per_level: float,
    delta_cap: int,
) -> float:
    """The per-level error bound ``alpha`` of the noisy counts.

    The number of counts released at any level is at most
    ``max(ell^2 n^2, |Sigma|)``; the counts of fixed-length patterns have L1
    sensitivity ``2 ell`` (Corollary 3) and L2 sensitivity
    ``sqrt(2 ell Delta)`` (Corollary 6).
    """
    num_queries = max(ell * ell * database_size * database_size, alphabet_size, 1)
    l1 = 2.0 * ell
    l2 = math.sqrt(2.0 * ell * delta_cap)
    return mechanism.sup_error_bound(
        num_queries, beta_per_level, l1_sensitivity=l1, l2_sensitivity=l2
    )


def _prune_by_noisy_count(
    patterns: Sequence[str],
    exact_counts: Sequence[float],
    mechanism: CountingMechanism,
    ell: int,
    delta_cap: int,
    threshold: float,
    rng: np.random.Generator,
) -> tuple[list[str], dict[str, float]]:
    """Add calibrated noise to the exact counts and keep the patterns whose
    noisy count reaches the threshold."""
    if not patterns:
        return [], {}
    values = np.asarray(exact_counts, dtype=np.float64)
    noisy = mechanism.randomize(
        values,
        l1_sensitivity=2.0 * ell,
        l2_sensitivity=math.sqrt(2.0 * ell * delta_cap),
        rng=rng,
    )
    kept: list[str] = []
    kept_counts: dict[str, float] = {}
    for pattern, value in zip(patterns, noisy):
        if value >= threshold:
            kept.append(pattern)
            kept_counts[pattern] = float(value)
    return kept, kept_counts


def suffix_prefix_overlaps(
    strings: Sequence[str], overlap: int, lce: CollectionLCE | None = None
) -> list[tuple[int, int]]:
    """All ordered pairs ``(i, j)`` such that the length-``overlap`` suffix of
    ``strings[i]`` equals the length-``overlap`` prefix of ``strings[j]``.

    Uses the longest-common-extension structure over the collection, as in
    the paper's efficient implementation (Lemma 7, Step 2).
    """
    if lce is None:
        encoded = [np.fromiter((ord(c) for c in s), dtype=np.int64, count=len(s)) for s in strings]
        lce = CollectionLCE(encoded)
    pairs: list[tuple[int, int]] = []
    for i in range(len(strings)):
        for j in range(len(strings)):
            if lce.has_overlap(i, j, overlap):
                pairs.append((i, j))
    return pairs


def build_candidate_set(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    budget: PrivacyBudget | None = None,
    rng: np.random.Generator | None = None,
    doubling_limit: int | None = None,
    lengths: Sequence[int] | None = None,
) -> CandidateSet:
    """Run the differentially private candidate-set construction.

    Parameters
    ----------
    database:
        The database ``D``.
    params:
        Construction parameters (the contribution cap, ``beta``, threshold
        override and noiseless flag are taken from here).
    budget:
        The budget for this stage.  Defaults to ``params.budget`` — callers
        that embed the candidate stage in a larger pipeline (Theorem 1/2
        constructions) pass the stage's share explicitly.
    rng:
        Randomness source.
    doubling_limit:
        Stop the doubling once strings of this length have been built
        (defaults to ``ell``; the q-gram constructions pass ``q``).
    lengths:
        Which candidate lengths ``C_m`` to complete (defaults to every
        ``m in [1, ell]``; the q-gram constructions pass ``[q]``).
    """
    if rng is None:
        rng = np.random.default_rng()
    stage_budget = budget if budget is not None else params.budget
    ell = params.resolve_max_length(database.max_length)
    delta_cap = params.resolve_delta_cap(ell)
    n = database.num_documents
    capacity = n * ell

    limit = ell if doubling_limit is None else min(doubling_limit, ell)
    num_levels = int(math.floor(math.log2(max(1, limit)))) + 1
    mechanism = per_level_mechanism(stage_budget, num_levels, params.noiseless)
    beta_per_level = params.beta / num_levels
    alpha = candidate_alpha(
        n, ell, database.alphabet_size, mechanism, beta_per_level, delta_cap
    )
    threshold = params.threshold if params.threshold is not None else 2.0 * alpha

    accountant = PrivacyAccountant()
    levels: dict[int, list[str]] = {}
    noisy_counts: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Level 0: single letters.  Every letter of the (public) alphabet gets a
    # noisy count, including letters that never occur.
    # ------------------------------------------------------------------
    letters = list(database.alphabet)
    exact = database.count_many(letters, delta_cap, backend=params.count_backend)
    kept, kept_counts = _prune_by_noisy_count(
        letters, exact, mechanism, ell, delta_cap, threshold, rng
    )
    accountant.spend("candidates level 1", mechanism.epsilon, mechanism.delta)
    if len(kept) > capacity:
        raise ConstructionAborted(
            f"candidate set P_1 grew to {len(kept)} > n*ell = {capacity}", level=1
        )
    levels[1] = sorted(kept)
    noisy_counts.update(kept_counts)

    # ------------------------------------------------------------------
    # Doubling levels: P_{2^k} from P_{2^{k-1}} o P_{2^{k-1}}.
    # ------------------------------------------------------------------
    length = 1
    while length * 2 <= limit:
        length *= 2
        previous = levels[length // 2]
        pairs = [left + right for left in previous for right in previous]
        # Deduplicate while keeping order deterministic.
        pairs = sorted(set(pairs))
        # One batched engine call per level: the whole |P|^2 concatenation
        # batch is counted in one corpus pass under the Aho-Corasick backend.
        exact = database.count_many(pairs, delta_cap, backend=params.count_backend)
        kept, kept_counts = _prune_by_noisy_count(
            pairs, exact, mechanism, ell, delta_cap, threshold, rng
        )
        accountant.spend(
            f"candidates level {length}", mechanism.epsilon, mechanism.delta
        )
        if len(kept) > capacity:
            raise ConstructionAborted(
                f"candidate set P_{length} grew to {len(kept)} > n*ell = {capacity}",
                level=length,
            )
        levels[length] = sorted(kept)
        noisy_counts.update(kept_counts)

    # ------------------------------------------------------------------
    # Completion: C_m for non-powers of two via suffix/prefix overlaps.
    # This is post-processing of the released sets P_{2^k}.
    # ------------------------------------------------------------------
    if lengths is None:
        lengths = list(range(1, ell + 1))
    by_length: dict[int, list[str]] = {}
    lce_cache: dict[int, CollectionLCE] = {}
    for m in sorted(set(lengths)):
        if m < 1 or m > ell:
            continue
        power = 1 << int(math.floor(math.log2(m)))
        if power not in levels:
            by_length[m] = []
            continue
        if m == power:
            by_length[m] = list(levels[power])
            continue
        base = levels[power]
        if not base:
            by_length[m] = []
            continue
        overlap = 2 * power - m
        if power not in lce_cache:
            encoded = [database.alphabet.encode(s) for s in base]
            lce_cache[power] = CollectionLCE(encoded)
        lce = lce_cache[power]
        candidates: set[str] = set()
        for i, left in enumerate(base):
            for j, right in enumerate(base):
                if lce.has_overlap(i, j, overlap):
                    candidates.add(left + right[overlap:])
        by_length[m] = sorted(candidates)

    return CandidateSet(
        levels=levels,
        by_length=by_length,
        alpha=alpha,
        threshold=threshold,
        noisy_counts=noisy_counts,
        accountant=accountant,
    )
