"""Step 1 of the construction: differentially private candidate sets.

The construction algorithm first reduces the pattern universe from
``|Sigma|^ell`` to at most ``n^2 ell^3`` strings by computing a *candidate
set* ``C`` (Lemma 6 for pure DP, Lemma 15 for approximate DP):

1. Build sets ``P_1, P_2, P_4, ..., P_{2^j}`` (``j = floor(log2 ell)``) by
   length doubling: ``P_1`` keeps the letters whose noisy count reaches the
   threshold ``tau = 2 alpha``; ``P_{2^k}`` keeps the concatenations of two
   strings of ``P_{2^{k-1}}`` whose noisy count reaches ``tau``.  Crucially
   the noisy counts are computed for **all** concatenations — including
   strings that never occur in the database — which is what makes the
   released candidate set differentially private.
2. For every length ``m`` that is not a power of two, ``C_m`` contains every
   string of length ``m`` whose length-``2^k`` prefix and suffix
   (``k = floor(log2 m)``) both belong to ``P_{2^k}``.  These strings are
   found through suffix/prefix overlaps and require no further access to the
   database (post-processing).

The algorithm aborts with the paper's explicit *fail* outcome when a noisy
set grows beyond ``n * ell`` (this happens with negligible probability under
the accuracy event).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.array_build import (
    SortJoinCounter,
    decode_rows,
    dedup_rows,
    match_overlap_pairs,
    pack_strings,
    row_bytes,
)
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.counting import AUTO_BACKEND
from repro.dp.composition import PrivacyAccountant, PrivacyBudget
from repro.dp.mechanisms import CountingMechanism, per_level_mechanism
from repro.exceptions import ConstructionAborted
from repro._deprecation import warn_deprecated

__all__ = ["CandidateSet", "build_candidate_set", "candidate_alpha"]


@dataclass
class CandidateSet:
    """The candidate set ``C`` together with its construction metadata.

    Attributes
    ----------
    levels:
        ``levels[2**k]`` is the pruned set ``P_{2^k}`` (sorted lists for
        determinism).
    by_length:
        ``by_length[m]`` is ``C_m`` for every length ``m`` that was completed
        (powers of two map to the corresponding ``P`` set).
    alpha:
        The per-level noisy-count error bound used to set the threshold.
    threshold:
        The pruning threshold ``tau`` (``2 * alpha`` unless overridden).
    noisy_counts:
        Noisy counts of the strings that were *kept* during the doubling
        phase (useful for inspection; not needed by later stages).
    accountant:
        Privacy expenditure of the doubling phase.
    matrices:
        Optional int32 code-matrix form of ``by_length`` (one lexsorted
        ``(k, m)`` matrix per completed length), populated by the array
        construction pipeline so downstream stages can keep working on
        arrays without re-encoding the string lists.  ``None`` when the
        object pipeline built the set.
    """

    levels: dict[int, list[str]]
    by_length: dict[int, list[str]]
    alpha: float
    threshold: float
    noisy_counts: dict[str, float] = field(default_factory=dict)
    accountant: PrivacyAccountant = field(default_factory=PrivacyAccountant)
    matrices: "dict[int, np.ndarray] | None" = field(
        default=None, compare=False, repr=False
    )

    def all_strings(self) -> set[str]:
        """The full candidate set ``C`` (union over all lengths)."""
        result: set[str] = set()
        for strings in self.by_length.values():
            result.update(strings)
        return result

    @property
    def size(self) -> int:
        return len(self.all_strings())

    def max_level_length(self) -> int:
        return max(self.levels, default=0)


def candidate_alpha(
    database_size: int,
    ell: int,
    alphabet_size: int,
    mechanism: CountingMechanism,
    beta_per_level: float,
    delta_cap: int,
) -> float:
    """The per-level error bound ``alpha`` of the noisy counts.

    The number of counts released at any level is at most
    ``max(ell^2 n^2, |Sigma|)``; the counts of fixed-length patterns have L1
    sensitivity ``2 ell`` (Corollary 3) and L2 sensitivity
    ``sqrt(2 ell Delta)`` (Corollary 6).
    """
    num_queries = max(ell * ell * database_size * database_size, alphabet_size, 1)
    l1 = 2.0 * ell
    l2 = math.sqrt(2.0 * ell * delta_cap)
    return mechanism.sup_error_bound(
        num_queries, beta_per_level, l1_sensitivity=l1, l2_sensitivity=l2
    )


def _prune_by_noisy_count(
    patterns: Sequence[str],
    exact_counts: Sequence[float],
    mechanism: CountingMechanism,
    ell: int,
    delta_cap: int,
    threshold: float,
    rng: np.random.Generator,
) -> tuple[list[str], dict[str, float]]:
    """Add calibrated noise to the exact counts and keep the patterns whose
    noisy count reaches the threshold."""
    if not patterns:
        return [], {}
    values = np.asarray(exact_counts, dtype=np.float64)
    noisy = mechanism.randomize(
        values,
        l1_sensitivity=2.0 * ell,
        l2_sensitivity=math.sqrt(2.0 * ell * delta_cap),
        rng=rng,
    )
    kept: list[str] = []
    kept_counts: dict[str, float] = {}
    for pattern, value in zip(patterns, noisy):
        if value >= threshold:
            kept.append(pattern)
            kept_counts[pattern] = float(value)
    return kept, kept_counts


#: sentinel distinguishing "lce not passed" from an explicit None.
_LCE_UNSET = object()


def suffix_prefix_overlaps(
    strings: Sequence[str], overlap: int, lce: object = _LCE_UNSET
) -> list[tuple[int, int]]:
    """All ordered pairs ``(i, j)`` such that the length-``overlap`` suffix of
    ``strings[i]`` equals the length-``overlap`` prefix of ``strings[j]``.

    This realizes the overlap step of the paper's efficient implementation
    (Lemma 7, Step 2) by hash-bucketing the encoded length-``overlap``
    suffix and prefix keys and joining the buckets — ``O(k log k)`` total
    instead of the ``O(k^2)`` all-pairs probe loop, with one bulk encode of
    the collection instead of a per-string ``np.fromiter``.  Pairs come out
    in the double loop's order (``i``-major, ``j`` ascending).

    ``lce`` is deprecated and ignored: bucketing on the exact keys already
    decides equality, so no extension queries remain.  Passing it (even as
    ``None``) emits a once-per-process :class:`DeprecationWarning`.
    """
    if lce is not _LCE_UNSET:
        warn_deprecated(
            "the lce parameter of suffix_prefix_overlaps",
            "suffix_prefix_overlaps(strings, overlap)",
        )
    n = len(strings)
    if n == 0:
        return []
    if overlap == 0:
        return [(i, j) for i in range(n) for j in range(n)]
    matrix, lengths = pack_strings(strings)
    valid = np.flatnonzero(lengths >= overlap)
    if valid.size == 0:
        return []
    suffix_columns = (lengths[valid] - overlap)[:, None] + np.arange(overlap)[None, :]
    suffix_keys = row_bytes(
        np.ascontiguousarray(matrix[valid[:, None], suffix_columns])
    )
    prefix_keys = row_bytes(np.ascontiguousarray(matrix[valid, :overlap]))
    left, right = match_overlap_pairs(suffix_keys, prefix_keys)
    return list(zip(valid[left].tolist(), valid[right].tolist()))


def build_candidate_set(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    budget: PrivacyBudget | None = None,
    rng: np.random.Generator | None = None,
    doubling_limit: int | None = None,
    lengths: Sequence[int] | None = None,
) -> CandidateSet:
    """Run the differentially private candidate-set construction.

    Parameters
    ----------
    database:
        The database ``D``.
    params:
        Construction parameters (the contribution cap, ``beta``, threshold
        override and noiseless flag are taken from here).
    budget:
        The budget for this stage.  Defaults to ``params.budget`` — callers
        that embed the candidate stage in a larger pipeline (Theorem 1/2
        constructions) pass the stage's share explicitly.
    rng:
        Randomness source.
    doubling_limit:
        Stop the doubling once strings of this length have been built
        (defaults to ``ell``; the q-gram constructions pass ``q``).
    lengths:
        Which candidate lengths ``C_m`` to complete (defaults to every
        ``m in [1, ell]``; the q-gram constructions pass ``[q]``).
    """
    if rng is None:
        rng = np.random.default_rng()
    stage_budget = budget if budget is not None else params.budget
    ell = params.resolve_max_length(database.max_length)
    delta_cap = params.resolve_delta_cap(ell)
    n = database.num_documents
    capacity = n * ell

    limit = ell if doubling_limit is None else min(doubling_limit, ell)
    num_levels = int(math.floor(math.log2(max(1, limit)))) + 1
    mechanism = per_level_mechanism(stage_budget, num_levels, params.noiseless)
    beta_per_level = params.beta / num_levels
    alpha = candidate_alpha(
        n, ell, database.alphabet_size, mechanism, beta_per_level, delta_cap
    )
    threshold = params.threshold if params.threshold is not None else 2.0 * alpha

    if params.resolve_build_backend() == "array":
        return _build_candidate_set_array(
            database,
            params,
            rng,
            mechanism=mechanism,
            ell=ell,
            delta_cap=delta_cap,
            capacity=capacity,
            limit=limit,
            alpha=alpha,
            threshold=threshold,
            lengths=lengths,
        )

    accountant = PrivacyAccountant()
    levels: dict[int, list[str]] = {}
    noisy_counts: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Level 0: single letters.  Every letter of the (public) alphabet gets a
    # noisy count, including letters that never occur.
    # ------------------------------------------------------------------
    letters = list(database.alphabet)
    with obs.span("level", length=1):
        with obs.span("count", patterns=len(letters)):
            exact = database.count_many(
                letters, delta_cap, backend=params.count_backend
            )
        kept, kept_counts = _prune_by_noisy_count(
            letters, exact, mechanism, ell, delta_cap, threshold, rng
        )
    accountant.spend("candidates level 1", mechanism.epsilon, mechanism.delta)
    if len(kept) > capacity:
        raise ConstructionAborted(
            f"candidate set P_1 grew to {len(kept)} > n*ell = {capacity}", level=1
        )
    levels[1] = sorted(kept)
    noisy_counts.update(kept_counts)

    # ------------------------------------------------------------------
    # Doubling levels: P_{2^k} from P_{2^{k-1}} o P_{2^{k-1}}.
    # ------------------------------------------------------------------
    length = 1
    while length * 2 <= limit:
        length *= 2
        previous = levels[length // 2]
        with obs.span("level", length=length):
            pairs = [left + right for left in previous for right in previous]
            # Deduplicate while keeping order deterministic.
            pairs = sorted(set(pairs))
            # One batched engine call per level: the whole |P|^2 concatenation
            # batch is counted in one corpus pass under the Aho-Corasick
            # backend.
            with obs.span("count", patterns=len(pairs)):
                exact = database.count_many(
                    pairs, delta_cap, backend=params.count_backend
                )
            kept, kept_counts = _prune_by_noisy_count(
                pairs, exact, mechanism, ell, delta_cap, threshold, rng
            )
        accountant.spend(
            f"candidates level {length}", mechanism.epsilon, mechanism.delta
        )
        if len(kept) > capacity:
            raise ConstructionAborted(
                f"candidate set P_{length} grew to {len(kept)} > n*ell = {capacity}",
                level=length,
            )
        levels[length] = sorted(kept)
        noisy_counts.update(kept_counts)

    with obs.span("completion"):
        by_length, _ = _complete_lengths(levels, None, lengths, ell)
    return CandidateSet(
        levels=levels,
        by_length=by_length,
        alpha=alpha,
        threshold=threshold,
        noisy_counts=noisy_counts,
        accountant=accountant,
    )


def _build_candidate_set_array(
    database: StringDatabase,
    params: ConstructionParams,
    rng: np.random.Generator,
    *,
    mechanism: CountingMechanism,
    ell: int,
    delta_cap: int,
    capacity: int,
    limit: int,
    alpha: float,
    threshold: float,
    lengths: Sequence[int] | None,
) -> CandidateSet:
    """The ``build_backend="array"`` body of :func:`build_candidate_set`.

    Bit-identical to the object body: the concatenation batch of every
    doubling level is the index cross-product of the previous (lexsorted)
    level matrix — whose row-major order *is* ``sorted(set(left + right))``,
    because all strings of a level share one length — so each level feeds
    the same exact-count vector to the same single ``randomize`` call.
    Counting goes through :class:`~repro.core.array_build.SortJoinCounter`
    when the counting backend is ``"auto"`` (identical integers, no
    per-batch automaton); an explicit backend is honored via
    ``count_many``.
    """
    use_sortjoin = params.count_backend == AUTO_BACKEND
    counter = SortJoinCounter.shared(database) if use_sortjoin else None
    l1 = 2.0 * ell
    l2 = math.sqrt(2.0 * ell * delta_cap)

    def batch_counts(matrix: np.ndarray) -> np.ndarray:
        if counter is not None:
            return counter.counts(matrix, delta_cap)
        return database.count_many(
            decode_rows(matrix), delta_cap, backend=params.count_backend
        )

    accountant = PrivacyAccountant()
    levels: dict[int, list[str]] = {}
    matrices: dict[int, np.ndarray] = {}
    noisy_counts: dict[str, float] = {}

    # Level 0: one noisy count per alphabet letter (present or not).
    letters = list(database.alphabet)
    letters_matrix = np.array([[ord(letter)] for letter in letters], dtype=np.int32)
    with obs.span("level", length=1):
        with obs.span("count", patterns=len(letters)):
            exact = batch_counts(letters_matrix)
        noisy = mechanism.randomize(
            np.asarray(exact, dtype=np.float64),
            l1_sensitivity=l1,
            l2_sensitivity=l2,
            rng=rng,
        )
        keep = np.flatnonzero(noisy >= threshold)
    accountant.spend("candidates level 1", mechanism.epsilon, mechanism.delta)
    if keep.size > capacity:
        raise ConstructionAborted(
            f"candidate set P_1 grew to {keep.size} > n*ell = {capacity}", level=1
        )
    noisy_counts.update(
        (letters[int(i)], float(noisy[i])) for i in keep
    )
    levels[1] = sorted(letters[int(i)] for i in keep)
    matrices[1] = np.array([[ord(letter)] for letter in levels[1]], dtype=np.int32)

    # Doubling levels: the cross product of a lexsorted equal-length level
    # with itself, in row-major order, is already sorted and duplicate-free.
    length = 1
    while length * 2 <= limit:
        length *= 2
        previous = matrices[length // 2]
        k = previous.shape[0]
        with obs.span("level", length=length):
            if k:
                left = np.repeat(np.arange(k), k)
                right = np.tile(np.arange(k), k)
                pairs_matrix = np.concatenate(
                    [previous[left], previous[right]], axis=1
                )
                with obs.span("count", patterns=int(pairs_matrix.shape[0])):
                    exact = batch_counts(pairs_matrix)
                noisy = mechanism.randomize(
                    np.asarray(exact, dtype=np.float64),
                    l1_sensitivity=l1,
                    l2_sensitivity=l2,
                    rng=rng,
                )
                keep = noisy >= threshold
            else:
                pairs_matrix = np.zeros((0, length), dtype=np.int32)
                noisy = np.zeros(0, dtype=np.float64)
                keep = np.zeros(0, dtype=bool)
        accountant.spend(
            f"candidates level {length}", mechanism.epsilon, mechanism.delta
        )
        kept_matrix = pairs_matrix[keep]
        if kept_matrix.shape[0] > capacity:
            raise ConstructionAborted(
                f"candidate set P_{length} grew to {kept_matrix.shape[0]} "
                f"> n*ell = {capacity}",
                level=length,
            )
        levels[length] = decode_rows(kept_matrix)
        matrices[length] = kept_matrix
        noisy_counts.update(
            zip(levels[length], (float(value) for value in noisy[keep]))
        )

    with obs.span("completion"):
        by_length, completion_matrices = _complete_lengths(
            levels, matrices, lengths, ell
        )
    return CandidateSet(
        levels=levels,
        by_length=by_length,
        alpha=alpha,
        threshold=threshold,
        noisy_counts=noisy_counts,
        accountant=accountant,
        matrices=completion_matrices,
    )


def _complete_lengths(
    levels: dict[int, list[str]],
    matrices: dict[int, np.ndarray] | None,
    lengths: Sequence[int] | None,
    ell: int,
) -> tuple[dict[int, list[str]], dict[int, np.ndarray]]:
    """Completion step shared by both pipelines: ``C_m`` for every requested
    length via suffix/prefix overlap joins on the doubling levels.

    Pure post-processing of the released ``P_{2^k}`` sets (Lemma 7, Step 2):
    a length-``m`` candidate is ``left + right[overlap:]`` for every pair
    whose length-``overlap`` suffix/prefix keys match, deduplicated and
    sorted — the hash-bucketed equivalent of the LCE probe loop.  Returns
    the string lists plus the code matrices they were cut from.
    """
    if lengths is None:
        lengths = list(range(1, ell + 1))
    by_length: dict[int, list[str]] = {}
    by_length_matrices: dict[int, np.ndarray] = {}
    packed: dict[int, np.ndarray] = {}

    def level_matrix(power: int) -> np.ndarray:
        if matrices is not None:
            return matrices[power]
        if power not in packed:
            packed[power], _ = pack_strings(levels[power])
        return packed[power]

    for m in sorted(set(lengths)):
        if m < 1 or m > ell:
            continue
        power = 1 << int(math.floor(math.log2(m)))
        if power not in levels:
            by_length[m] = []
            by_length_matrices[m] = np.zeros((0, m), dtype=np.int32)
            continue
        base_matrix = level_matrix(power)
        if m == power:
            by_length[m] = list(levels[power])
            by_length_matrices[m] = base_matrix
            continue
        if not base_matrix.shape[0]:
            by_length[m] = []
            by_length_matrices[m] = np.zeros((0, m), dtype=np.int32)
            continue
        overlap = 2 * power - m
        suffix_keys = row_bytes(
            np.ascontiguousarray(base_matrix[:, power - overlap :])
        )
        prefix_keys = row_bytes(np.ascontiguousarray(base_matrix[:, :overlap]))
        left, right = match_overlap_pairs(suffix_keys, prefix_keys)
        joined = np.concatenate(
            [base_matrix[left], base_matrix[right][:, overlap:]], axis=1
        )
        deduped = dedup_rows(joined)
        by_length[m] = decode_rows(deduped)
        by_length_matrices[m] = deduped
    return by_length, by_length_matrices
