"""Reference implementations of the paper's counting queries on a database.

These functions mirror Section 1.1's definitions exactly and are used as the
ground truth in tests, metrics and benchmarks.  They accept either a
:class:`repro.core.database.StringDatabase` or a plain sequence of strings.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.database import StringDatabase
from repro.counting import make_engine, resolve_backend
from repro.strings import naive

__all__ = [
    "substring_count",
    "document_count",
    "count_delta",
    "exact_count_table",
]


def _documents(database: StringDatabase | Sequence[str]) -> Sequence[str]:
    if isinstance(database, StringDatabase):
        return database.documents
    return database


def substring_count(database: StringDatabase | Sequence[str], pattern: str) -> int:
    """``count(P, D)`` — total occurrences of ``P`` in the collection."""
    return naive.substring_count(pattern, _documents(database))


def document_count(database: StringDatabase | Sequence[str], pattern: str) -> int:
    """``count_1(P, D)`` — number of documents containing ``P``."""
    return naive.document_count(pattern, _documents(database))


def count_delta(
    database: StringDatabase | Sequence[str], pattern: str, delta: int
) -> int:
    """``count_Delta(P, D)`` — per-document contributions capped at
    ``delta``."""
    return naive.count_delta(pattern, _documents(database), delta)


def exact_count_table(
    database: StringDatabase | Sequence[str],
    delta: int,
    max_length: int | None = None,
    *,
    backend: str = "auto",
) -> Mapping[str, int]:
    """Exact ``count_Delta`` of every distinct substring of the collection
    with length at most ``max_length``.

    Only substrings that occur in the collection appear in the table; all
    other patterns have count 0 by definition.  The table is one large
    batch, so the default ``auto`` backend typically counts it in a single
    Aho-Corasick pass over the collection; every backend returns identical
    counts (``naive`` is the reference the engines are tested against).
    """
    documents = _documents(database)
    patterns = sorted(naive.all_substrings(documents, max_length=max_length))
    if isinstance(database, StringDatabase):
        counts = database.count_many(patterns, delta, backend=backend)
    else:
        corpus_length = sum(len(document) for document in documents)
        name = resolve_backend(backend, len(patterns), corpus_length)
        counts = make_engine(name, documents).count_many(patterns, delta)
    return {pattern: int(count) for pattern, count in zip(patterns, counts)}
