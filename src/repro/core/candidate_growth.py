"""Alternative candidate-growth strategies (ablation of Step 1).

The paper's candidate construction (Lemma 6 / Lemma 15) *doubles* the pattern
length at every round, so only ``floor(log2 ell) + 1`` noisy releases are
needed and the per-release budget is ``epsilon / (floor(log2 ell) + 1)``.
Prior applied work (Chen et al. [18], Kim et al. [51]) instead grows
candidates one letter at a time: the frequent ``(m-1)``-grams are extended by
the frequent ``1``-grams, which requires ``ell`` noisy releases and therefore
a per-release budget of only ``epsilon / ell``.

This module implements the one-letter-extension strategy with exactly the
same interface and privacy accounting as
:func:`repro.core.candidate_set.build_candidate_set`, so the two can be
compared head to head: same database, same total budget, same threshold rule
``tau = 2 alpha``.  The ablation (experiment E19) shows how the per-level
error ``alpha`` — and with it the smallest count a pattern needs in order to
survive the pruning — degrades from ``O(ell log ell)`` to ``O(ell^2)`` when
the doubling is replaced by one-letter extension.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.candidate_set import CandidateSet, _prune_by_noisy_count
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyAccountant, PrivacyBudget
from repro.dp.mechanisms import CountingMechanism, per_level_mechanism
from repro.exceptions import ConstructionAborted

__all__ = ["build_onestep_candidate_set", "onestep_candidate_alpha"]


def onestep_candidate_alpha(
    database_size: int,
    ell: int,
    alphabet_size: int,
    mechanism: CountingMechanism,
    beta_per_level: float,
    delta_cap: int,
) -> float:
    """Per-level error bound of the one-letter-extension strategy.

    The sensitivity of the counts released at one level is the same as in the
    doubling strategy (Corollaries 3 and 6: L1 at most ``2 ell``, L2 at most
    ``sqrt(2 ell Delta)``); only the number of levels — and hence the
    per-level budget baked into ``mechanism`` — differs.
    """
    num_queries = max(ell * database_size * alphabet_size, alphabet_size, 1)
    l1 = 2.0 * ell
    l2 = math.sqrt(2.0 * ell * delta_cap)
    return mechanism.sup_error_bound(
        num_queries, beta_per_level, l1_sensitivity=l1, l2_sensitivity=l2
    )


def build_onestep_candidate_set(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    budget: PrivacyBudget | None = None,
    rng: np.random.Generator | None = None,
    max_pattern_length: int | None = None,
    lengths: Sequence[int] | None = None,
) -> CandidateSet:
    """Grow a candidate set one letter at a time (prior-work strategy).

    Parameters
    ----------
    database:
        The database ``D``.
    params:
        Construction parameters; the contribution cap, ``beta``, threshold
        override and noiseless flag are taken from here.
    budget:
        Budget for this stage (defaults to ``params.budget``).
    rng:
        Randomness source.
    max_pattern_length:
        Longest candidate length to grow (defaults to ``ell``).
    lengths:
        Which lengths to expose in ``by_length`` (defaults to every grown
        length).

    Returns
    -------
    CandidateSet
        Same container as the doubling construction; ``levels`` is keyed by
        every grown length (not just powers of two).
    """
    if rng is None:
        rng = np.random.default_rng()
    stage_budget = budget if budget is not None else params.budget
    ell = params.resolve_max_length(database.max_length)
    delta_cap = params.resolve_delta_cap(ell)
    n = database.num_documents
    capacity = n * ell

    limit = ell if max_pattern_length is None else min(max_pattern_length, ell)
    num_levels = max(1, limit)
    mechanism = per_level_mechanism(stage_budget, num_levels, params.noiseless)
    beta_per_level = params.beta / num_levels
    alpha = onestep_candidate_alpha(
        n, ell, database.alphabet_size, mechanism, beta_per_level, delta_cap
    )
    threshold = params.threshold if params.threshold is not None else 2.0 * alpha

    accountant = PrivacyAccountant()
    levels: dict[int, list[str]] = {}
    noisy_counts: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Length 1: every letter of the public alphabet gets a noisy count.
    # ------------------------------------------------------------------
    letters = list(database.alphabet)
    exact = database.count_many(letters, delta_cap, backend=params.count_backend)
    kept, kept_counts = _prune_by_noisy_count(
        letters, exact, mechanism, ell, delta_cap, threshold, rng
    )
    accountant.spend("one-step candidates length 1", mechanism.epsilon, mechanism.delta)
    if len(kept) > capacity:
        raise ConstructionAborted(
            f"candidate set P_1 grew to {len(kept)} > n*ell = {capacity}", level=1
        )
    levels[1] = sorted(kept)
    noisy_counts.update(kept_counts)

    # ------------------------------------------------------------------
    # Lengths 2..limit: extend every surviving (m-1)-gram by every surviving
    # letter.  Every extension — including strings that never occur in D —
    # receives a noisy count, which is what keeps the release private.
    # ------------------------------------------------------------------
    for length in range(2, limit + 1):
        previous = levels[length - 1]
        extensions = sorted({left + letter for left in previous for letter in levels[1]})
        exact = database.count_many(
            extensions, delta_cap, backend=params.count_backend
        )
        kept, kept_counts = _prune_by_noisy_count(
            extensions, exact, mechanism, ell, delta_cap, threshold, rng
        )
        accountant.spend(
            f"one-step candidates length {length}", mechanism.epsilon, mechanism.delta
        )
        if len(kept) > capacity:
            raise ConstructionAborted(
                f"candidate set P_{length} grew to {len(kept)} > n*ell = {capacity}",
                level=length,
            )
        levels[length] = sorted(kept)
        noisy_counts.update(kept_counts)
        if not kept:
            # Nothing survives at this length, so nothing can survive at any
            # longer length either; stop early (post-processing).
            break

    if lengths is None:
        exposed = sorted(levels)
    else:
        exposed = sorted(set(lengths))
    by_length = {m: list(levels.get(m, [])) for m in exposed if 1 <= m <= ell}

    return CandidateSet(
        levels=levels,
        by_length=by_length,
        alpha=alpha,
        threshold=threshold,
        noisy_counts=noisy_counts,
        accountant=accountant,
    )
