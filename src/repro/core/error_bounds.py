"""Analytic error bounds.

Two families of formulas live here:

* **Implementation bounds** — the exact high-probability error bounds implied
  by the mechanisms this library actually runs (same constants).  Tests use
  them to assert ``measured error <= bound`` without slack guessing, and
  benchmarks print them next to the measured errors.
* **Paper asymptotics** — the Theta-shaped expressions stated by the paper's
  theorems (no constants).  Benchmarks use them to check *shape*: how the
  measured error scales with ``ell``, ``n``, ``|Sigma|``, ``epsilon`` and
  ``Delta``, and where pure DP and approximate DP part ways.
"""

from __future__ import annotations

import math

from repro.core.candidate_set import candidate_alpha
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
)
from repro.dp.prefix_sums import PrefixSumMechanism

__all__ = [
    "candidate_stage_bound",
    "counting_stage_bound",
    "structure_error_bound",
    "theorem1_asymptotic",
    "theorem2_asymptotic",
    "theorem3_asymptotic",
    "theorem4_asymptotic",
    "theorem5_lower_bound",
    "theorem6_lower_bound",
    "theorem7_lower_bound",
    "baseline_error_bound",
]


def _stage_mechanism(budget: PrivacyBudget) -> CountingMechanism:
    if budget.is_pure:
        return LaplaceMechanism(budget.epsilon)
    return GaussianMechanism(budget.epsilon, budget.delta)


# ----------------------------------------------------------------------
# Implementation bounds (exact constants of this library).
# ----------------------------------------------------------------------
def candidate_stage_bound(
    n: int, ell: int, alphabet_size: int, params: ConstructionParams
) -> float:
    """Error bound of the candidate-stage noisy counts (Lemmas 6/15): any
    pattern left out of the candidate set has true count below roughly three
    times this value."""
    budget = params.budget.scaled(params.candidate_budget_fraction)
    num_levels = int(math.floor(math.log2(max(1, ell)))) + 1
    mechanism = _stage_mechanism(budget.split(num_levels))
    return candidate_alpha(
        n,
        ell,
        alphabet_size,
        mechanism,
        params.beta / num_levels,
        params.resolve_delta_cap(ell),
    )


def counting_stage_bound(
    n: int,
    ell: int,
    params: ConstructionParams,
    *,
    trie_size: int | None = None,
    num_paths: int | None = None,
    max_path_length: int | None = None,
) -> float:
    """Error bound on the stored noisy counts of the main construction
    (Corollaries 4+5 for pure DP, 7+8 for approximate DP).

    The data-dependent quantities default to their worst-case values from the
    paper: ``|T_C| <= n^2 ell^4`` trie nodes, ``n^2 ell^3`` heavy paths and
    path length ``ell``.
    """
    delta_cap = params.resolve_delta_cap(ell)
    trie_size = trie_size if trie_size is not None else max(2, n * n * ell**4)
    num_paths = num_paths if num_paths is not None else max(1, n * n * ell**3)
    max_path_length = max_path_length if max_path_length is not None else max(1, ell)
    beta_stage = params.beta / 3.0
    remaining_fraction = (1.0 - params.candidate_budget_fraction) / 2.0
    stage_budget = params.budget.scaled(remaining_fraction)
    mechanism = _stage_mechanism(stage_budget)

    log_trie = math.floor(math.log2(max(2, trie_size))) + 1
    roots_l1 = 2.0 * ell * log_trie
    roots_l2 = math.sqrt(roots_l1 * delta_cap)
    roots_error = mechanism.sup_error_bound(
        num_paths, beta_stage, l1_sensitivity=roots_l1, l2_sensitivity=roots_l2
    )
    prefix_mechanism = PrefixSumMechanism(
        mechanism,
        total_l1_sensitivity=2.0 * ell * log_trie,
        per_sequence_l1_sensitivity=2.0 * delta_cap,
        max_length=max_path_length,
    )
    sums_error = prefix_mechanism.sup_error_bound(num_paths, beta_stage)
    return roots_error + sums_error


def structure_error_bound(
    n: int,
    ell: int,
    alphabet_size: int,
    params: ConstructionParams,
    *,
    trie_size: int | None = None,
    num_paths: int | None = None,
    max_path_length: int | None = None,
) -> float:
    """Bound on ``|noisy count - true count|`` for *any* pattern: stored
    patterns are covered by the counting-stage bound, absent patterns by the
    candidate-stage bound and the pruning threshold."""
    alpha_counts = counting_stage_bound(
        n,
        ell,
        params,
        trie_size=trie_size,
        num_paths=num_paths,
        max_path_length=max_path_length,
    )
    alpha_candidates = candidate_stage_bound(n, ell, alphabet_size, params)
    return max(3.0 * alpha_counts, 3.0 * alpha_candidates)


def baseline_error_bound(
    n: int, ell: int, params: ConstructionParams, *, max_nodes: int = 100_000
) -> float:
    """Error bound of the simple-trie baseline: noise calibrated to L1
    sensitivity ``ell (ell + 1)``, i.e. Theta(ell^2 / epsilon) up to logs."""
    delta_cap = params.resolve_delta_cap(ell)
    mechanism = _stage_mechanism(params.budget)
    l1 = float(ell * (ell + 1))
    l2 = math.sqrt(l1 * delta_cap)
    return mechanism.sup_error_bound(
        max_nodes, params.beta, l1_sensitivity=l1, l2_sensitivity=l2
    )


# ----------------------------------------------------------------------
# Paper asymptotics (Theta shapes, no constants).
# ----------------------------------------------------------------------
def theorem1_asymptotic(
    n: int, ell: int, alphabet_size: int, epsilon: float, beta: float = 0.05
) -> float:
    """Theorem 1: ``ell log(ell) (log^2(n ell / beta) + log|Sigma|) / eps``."""
    log_nl = math.log2(max(2.0, n * ell / beta))
    return ell * math.log2(max(2, ell)) * (log_nl**2 + math.log2(max(2, alphabet_size))) / epsilon


def theorem2_asymptotic(
    n: int,
    ell: int,
    alphabet_size: int,
    epsilon: float,
    delta: float,
    delta_cap: int,
    beta: float = 0.05,
) -> float:
    """Theorem 2: ``sqrt(ell Delta log(1/delta)) log(ell)
    (log(n ell / beta) + sqrt(log|Sigma| log log ell)) / eps``."""
    log_nl = math.log2(max(2.0, n * ell / beta))
    loglog_ell = math.log2(max(2.0, math.log2(max(2, ell))))
    return (
        math.sqrt(ell * delta_cap * math.log(1.0 / delta))
        * math.log2(max(2, ell))
        * (log_nl + math.sqrt(math.log2(max(2, alphabet_size)) * loglog_ell))
        / epsilon
    )


def theorem3_asymptotic(
    n: int, ell: int, alphabet_size: int, epsilon: float, beta: float = 0.05
) -> float:
    """Theorem 3: ``ell log(ell) (log(n ell / beta) + log|Sigma|) / eps``."""
    log_nl = math.log2(max(2.0, n * ell / beta))
    return ell * math.log2(max(2, ell)) * (log_nl + math.log2(max(2, alphabet_size))) / epsilon


def theorem4_asymptotic(
    n: int,
    ell: int,
    q: int,
    alphabet_size: int,
    epsilon: float,
    delta: float,
    delta_cap: int,
    beta: float = 0.05,
) -> float:
    """Theorem 4: ``sqrt(ell Delta log(n ell)) log(q)
    (eps + log log q + log(|Sigma| / (delta beta))) / eps``."""
    log_nl = math.log2(max(2.0, n * ell))
    log_q = math.log2(max(2, q))
    loglog_q = math.log2(max(2.0, log_q))
    return (
        math.sqrt(ell * delta_cap * log_nl)
        * log_q
        * (epsilon + loglog_q + math.log2(max(2.0, alphabet_size / (delta * beta))))
        / epsilon
    )


def theorem5_lower_bound(n: int, ell: int, alphabet_size: int, epsilon: float) -> float:
    """Theorem 5 packing lower bound: ``Omega(min(n, ell log|Sigma| / eps))``.

    The constant follows the proof: with ``m k ~ ell`` code positions the
    packing argument forces ``B >= (ell/2) ln(|Sigma| - 2) / eps`` and the
    error is ``B / 2``.
    """
    if alphabet_size < 4:
        raise ValueError("the packing argument needs |Sigma| >= 4")
    packing = (ell / 2.0) * math.log(max(2, alphabet_size - 2)) / epsilon / 2.0
    return min(float(n), packing)


def theorem6_lower_bound(ell: int) -> float:
    """Theorem 6: Substring Count requires additive error ``Omega(ell)``;
    the explicit pair in the proof forces error at least ``ell / 2``."""
    return ell / 2.0


def theorem7_lower_bound(
    n: int, ell: int, alphabet_size: int, epsilon: float, delta: float
) -> float:
    """Theorem 7 Document Count lower bound (via 1-way marginals):
    ``Omega(sqrt(ell) / (eps log ell))`` for ``delta > 0`` and
    ``Omega(ell / eps)`` shapes for ``delta = 0`` (both capped at ``n``)."""
    base = math.log(max(2, alphabet_size - 1))
    if delta > 0:
        value = math.sqrt(ell) / (epsilon * max(1.0, math.log2(max(2, ell))))
    else:
        value = ell / (epsilon * max(1.0, base))
    return min(float(n), value)
