"""The output data structure: a trie of noisy counts.

Both main constructions (Theorems 1 and 2) and the q-gram constructions
(Theorems 3 and 4) output a :class:`PrivateCountingTrie`: a pruned trie whose
nodes store differentially private counts for the strings they spell.  Since
the *construction* satisfies differential privacy, the structure can be
queried (and mined, and serialized) arbitrarily often without any further
privacy loss — every operation here is post-processing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro._deprecation import warn_deprecated
from repro.dp.composition import PrivacyBudget
from repro.strings.trie import Trie, TrieNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs import BuildProfile
    from repro.serving.compiled import CompiledTrie

__all__ = ["PrivateCountingTrie", "StructureMetadata", "payload_metadata"]


def payload_metadata(metadata: "StructureMetadata") -> dict:
    """``metadata`` as stored in release payloads.

    Single source of the payload's metadata rules for every counter form
    (in-memory and compiled): structures predating the engine layer
    serialized without a ``count_backend`` key, so an empty default is
    omitted to keep their digests stable.
    """
    payload = dict(metadata.__dict__)
    if not payload.get("count_backend"):
        payload.pop("count_backend", None)
    return payload


def release_payload(
    counts: dict,
    root_count: "float | None",
    metadata: "StructureMetadata",
    report: dict,
) -> dict:
    """Assemble the canonical release payload.

    One source of truth for the payload schema, shared by
    :meth:`PrivateCountingTrie.to_dict` and
    :meth:`repro.serving.CompiledTrie.to_payload` so the two forms stay
    byte-identical (the release store's digest check depends on it).
    ``counts`` maps stored patterns to noisy counts (copied, never
    mutated); the root / empty pattern's count is added when present so
    save -> load preserves every query.
    """
    counts = dict(counts)
    if root_count is not None:
        counts[""] = float(root_count)
    return {
        "metadata": payload_metadata(metadata),
        "counts": counts,
        "report": report,
    }


def payload_json(payload: dict) -> str:
    """The canonical JSON form every counter serializes (and digests)."""
    return json.dumps(payload, sort_keys=True)


def payload_digest(payload_text: str) -> str:
    """SHA-256 of a canonical JSON payload (the release-store digest)."""
    return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StructureMetadata:
    """Public metadata attached to a private counting structure."""

    #: the privacy budget the construction was run with.
    epsilon: float
    delta: float
    #: failure probability of the accuracy guarantee.
    beta: float
    #: contribution cap Delta of count_Delta.
    delta_cap: int
    #: declared maximum document length ell.
    max_length: int
    #: number of documents n.
    num_documents: int
    #: alphabet size |Sigma|.
    alphabet_size: int
    #: high-probability additive error bound of the stored counts.
    error_bound: float
    #: pruning threshold used by the construction.
    threshold: float
    #: fixed pattern length for q-gram structures (None for the general ones).
    qgram_length: int | None = None
    #: free-form name of the construction that produced the structure.
    construction: str = ""
    #: repro.counting backend that produced the exact counts the mechanisms
    #: randomized ("" for structures predating the engine layer).
    count_backend: str = ""


@dataclass
class PrivateCountingTrie:
    """A trie storing an (epsilon, delta)-differentially private count for
    every string it contains.

    Queries run in ``O(|P|)`` time: the pattern is matched in the trie and the
    stored noisy count is returned, or 0 when the pattern is absent (patterns
    absent from the structure have true count below the error bound with high
    probability).
    """

    trie: Trie
    metadata: StructureMetadata
    #: optional per-construction diagnostics (sizes, stage error bounds, ...).
    report: dict = field(default_factory=dict)
    #: build diagnostics: the construction's tracing-span tree wrapped in a
    #: :class:`repro.obs.BuildProfile` (total/per-stage wall and CPU
    #: seconds, pipeline backend; ``None`` when telemetry was disabled).
    #: Deliberately *not* part of the serialized payload or the content
    #: digest: two builds with identical released content must have
    #: identical digests regardless of how long they took or which pipeline
    #: produced them (``dpsc mine --profile`` prints this).
    profile: "BuildProfile | None" = field(default=None, repr=False, compare=False)
    #: lazily compiled array view backing query_many (rebuilt if the trie's
    #: node count changes; structures are immutable after construction).
    _batch_view: "CompiledTrie | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def timings(self) -> dict:
        """Deprecated flat view of :attr:`profile` — the pre-``repro.obs``
        ``{"build_backend", "total_seconds", "stages"}`` dict (empty when
        the build ran with telemetry disabled)."""
        warn_deprecated("PrivateCountingTrie.timings", "PrivateCountingTrie.profile")
        if self.profile is None:
            return {}
        return self.profile.legacy_timings()

    # ------------------------------------------------------------------
    # Queries (post-processing; no privacy cost)
    # ------------------------------------------------------------------
    def query(self, pattern: str) -> float:
        """Noisy ``count_Delta(pattern, D)`` estimate (0 when absent)."""
        node = self.trie.find(pattern)
        if node is None or node.noisy_count is None:
            return 0.0
        return float(node.noisy_count)

    def query_many(self, patterns: Sequence[str]) -> np.ndarray:
        """Noisy counts for a whole batch of patterns at once.

        Bit-for-bit equal to ``[self.query(p) for p in patterns]`` but
        answered by the compiled-trie batch machinery (all patterns advance
        one character per vectorized numpy round), so large batches run
        orders of magnitude faster than a per-pattern Python loop — see
        ``benchmarks/bench_query_many.py`` (E22).  Like every query, this is
        post-processing with no privacy cost.

        The compiled view is cached; a structure is treated as read-only
        once built.  Code that mutates stored nodes in place (tests,
        ablations) must call :meth:`invalidate_cached_views` afterwards —
        adding or pruning nodes is detected automatically via the node
        count, but an in-place count edit is not observable cheaply.
        """
        return self._batch_engine().batch_query(patterns)

    def invalidate_cached_views(self) -> None:
        """Drop the cached compiled view so the next :meth:`query_many`
        recompiles.  Required after mutating ``noisy_count`` values in
        place; structural changes (insert/prune) invalidate automatically."""
        self._batch_view = None

    def _batch_engine(self) -> "CompiledTrie":
        """The cached compiled view (compiled on first use)."""
        view = self._batch_view
        if view is None or view.num_nodes != self.trie.num_nodes:
            view = self.compiled(cache_size=0)
            self._batch_view = view
        return view

    def __contains__(self, pattern: str) -> bool:
        node = self.trie.find(pattern)
        return node is not None and node.noisy_count is not None

    def items(self) -> Iterator[tuple[str, float]]:
        """Iterate over ``(pattern, noisy count)`` pairs for every stored
        node (excluding the root / empty pattern)."""
        stack: list[tuple[TrieNode, str]] = [(self.trie.root, "")]
        while stack:
            node, prefix = stack.pop()
            if prefix and node.noisy_count is not None:
                yield prefix, float(node.noisy_count)
            for char, child in node.children.items():
                stack.append((child, prefix + char))

    def patterns(self) -> list[str]:
        return [pattern for pattern, _ in self.items()]

    def mine(
        self,
        threshold: float,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
    ) -> list[tuple[str, float]]:
        """All stored patterns whose noisy count reaches ``threshold``.

        This implements alpha-approximate Substring Mining (Definition 2)
        and, with ``exact_length=q``, alpha-approximate q-Gram Mining.  Any
        number of thresholds can be tried without additional privacy loss.
        """
        results = []
        for pattern, count in self.items():
            if count < threshold:
                continue
            if exact_length is not None and len(pattern) != exact_length:
                continue
            if len(pattern) < min_length:
                continue
            if max_length is not None and len(pattern) > max_length:
                continue
            results.append((pattern, count))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.trie.num_nodes

    @property
    def num_stored_patterns(self) -> int:
        return sum(1 for _ in self.items())

    @property
    def error_bound(self) -> float:
        return self.metadata.error_bound

    def mining_alpha(self, threshold: float) -> float:
        """The approximation slack with which mining at ``threshold``
        satisfies Definition 2.

        Stored patterns carry error at most ``error_bound``.  Patterns absent
        from the structure have true count below
        ``report['absent_pattern_bound']`` (they were either excluded from
        the candidate set or pruned), so they can only be "clearly frequent"
        when the threshold is small; the slack accounts for that.
        """
        absent_bound = float(
            self.report.get(
                "absent_pattern_bound",
                self.metadata.threshold + self.metadata.error_bound,
            )
        )
        return max(self.metadata.error_bound, absent_bound - threshold)

    @property
    def privacy_budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.metadata.epsilon, self.metadata.delta)

    def depth(self) -> int:
        return self.trie.height()

    # ------------------------------------------------------------------
    # Serialization (post-processing)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable representation of the structure."""
        # items() excludes the root, but query("") answers from it;
        # release_payload() keeps the empty pattern's count so save -> load
        # preserves every query.
        return release_payload(
            {pattern: count for pattern, count in self.items()},
            self.trie.root.noisy_count,
            self.metadata,
            self.report,
        )

    def to_payload(self) -> dict:
        """The :class:`repro.api.PrivateCounter` payload form — an alias of
        :meth:`to_dict`, shared by every structure kind so releases of any
        kind round-trip through the same stores and servers."""
        return self.to_dict()

    def to_json(self) -> str:
        return payload_json(self.to_dict())

    def content_digest(self) -> str:
        """SHA-256 of the canonical JSON form.

        Two structures storing the same counts, metadata and report have the
        same digest; the release store uses this to detect tampered or
        corrupted files on load.
        """
        return payload_digest(self.to_json())

    def compiled(self, *, cache_size: int = 4096):
        """This structure flattened into a
        :class:`repro.serving.CompiledTrie` for high-throughput serving
        (pure post-processing, identical query answers).

        When the structure was built by the array pipeline (or already
        compiled once for :meth:`query_many`), the cached array view is
        handed off zero-copy — a fresh cache wrapper around the same frozen
        arrays — instead of re-flattening the object trie.  Code that
        mutates stored counts in place must call
        :meth:`invalidate_cached_views` first, exactly as for
        :meth:`query_many`.
        """
        from repro.serving.compiled import CompiledTrie

        view = self._batch_view
        if view is not None and view.num_nodes == self.trie.num_nodes:
            return view.with_cache_size(cache_size)
        return CompiledTrie.from_structure(self, cache_size=cache_size)

    @classmethod
    def from_dict(cls, payload: dict) -> "PrivateCountingTrie":
        metadata = StructureMetadata(**payload["metadata"])
        trie = Trie()
        for pattern, count in payload["counts"].items():
            node = trie.insert(pattern)
            node.noisy_count = float(count)
        return cls(trie=trie, metadata=metadata, report=dict(payload.get("report", {})))

    @classmethod
    def from_payload(cls, payload: dict) -> "PrivateCountingTrie":
        """Rebuild a structure from :meth:`to_payload` output (the
        :class:`repro.api.PrivateCounter` counterpart of :meth:`from_dict`)."""
        return cls.from_dict(payload)

    def release(self, store, name: str = "release", *, format: str | None = None):
        """Persist this structure as the next version of release ``name`` in
        ``store`` (any object with a ``save(name, structure)`` method, e.g.
        :class:`repro.serving.ReleaseStore`) and return the store's record.

        ``format`` picks the payload format (``"json"`` / ``"binary"``)
        when the store supports the choice; ``None`` keeps the store's
        default.  This is the tail of the fluent workflow
        ``Dataset.from_documents(...).with_budget(...).build(kind).release(store)``;
        like every operation on a built structure it is post-processing.
        """
        if format is not None:
            return store.save(name, self, format=format)
        return store.save(name, self)

    @classmethod
    def from_json(cls, payload: str) -> "PrivateCountingTrie":
        return cls.from_dict(json.loads(payload))

    def save(self, path: "str | Path") -> "Path":
        """Write the structure to ``path`` as JSON and return the path.

        The file contains only the released (noisy) counts and public
        metadata, so sharing it carries no privacy cost beyond the
        construction's budget.
        """
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "PrivateCountingTrie":
        """Read a structure previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
