"""The output data structure: a trie of noisy counts.

Both main constructions (Theorems 1 and 2) and the q-gram constructions
(Theorems 3 and 4) output a :class:`PrivateCountingTrie`: a pruned trie whose
nodes store differentially private counts for the strings they spell.  Since
the *construction* satisfies differential privacy, the structure can be
queried (and mined, and serialized) arbitrarily often without any further
privacy loss — every operation here is post-processing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.dp.composition import PrivacyBudget
from repro.strings.trie import Trie, TrieNode

__all__ = ["PrivateCountingTrie", "StructureMetadata"]


@dataclass(frozen=True)
class StructureMetadata:
    """Public metadata attached to a private counting structure."""

    #: the privacy budget the construction was run with.
    epsilon: float
    delta: float
    #: failure probability of the accuracy guarantee.
    beta: float
    #: contribution cap Delta of count_Delta.
    delta_cap: int
    #: declared maximum document length ell.
    max_length: int
    #: number of documents n.
    num_documents: int
    #: alphabet size |Sigma|.
    alphabet_size: int
    #: high-probability additive error bound of the stored counts.
    error_bound: float
    #: pruning threshold used by the construction.
    threshold: float
    #: fixed pattern length for q-gram structures (None for the general ones).
    qgram_length: int | None = None
    #: free-form name of the construction that produced the structure.
    construction: str = ""
    #: repro.counting backend that produced the exact counts the mechanisms
    #: randomized ("" for structures predating the engine layer).
    count_backend: str = ""


@dataclass
class PrivateCountingTrie:
    """A trie storing an (epsilon, delta)-differentially private count for
    every string it contains.

    Queries run in ``O(|P|)`` time: the pattern is matched in the trie and the
    stored noisy count is returned, or 0 when the pattern is absent (patterns
    absent from the structure have true count below the error bound with high
    probability).
    """

    trie: Trie
    metadata: StructureMetadata
    #: optional per-construction diagnostics (sizes, stage error bounds, ...).
    report: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Queries (post-processing; no privacy cost)
    # ------------------------------------------------------------------
    def query(self, pattern: str) -> float:
        """Noisy ``count_Delta(pattern, D)`` estimate (0 when absent)."""
        node = self.trie.find(pattern)
        if node is None or node.noisy_count is None:
            return 0.0
        return float(node.noisy_count)

    def __contains__(self, pattern: str) -> bool:
        node = self.trie.find(pattern)
        return node is not None and node.noisy_count is not None

    def items(self) -> Iterator[tuple[str, float]]:
        """Iterate over ``(pattern, noisy count)`` pairs for every stored
        node (excluding the root / empty pattern)."""
        stack: list[tuple[TrieNode, str]] = [(self.trie.root, "")]
        while stack:
            node, prefix = stack.pop()
            if prefix and node.noisy_count is not None:
                yield prefix, float(node.noisy_count)
            for char, child in node.children.items():
                stack.append((child, prefix + char))

    def patterns(self) -> list[str]:
        return [pattern for pattern, _ in self.items()]

    def mine(
        self,
        threshold: float,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
    ) -> list[tuple[str, float]]:
        """All stored patterns whose noisy count reaches ``threshold``.

        This implements alpha-approximate Substring Mining (Definition 2)
        and, with ``exact_length=q``, alpha-approximate q-Gram Mining.  Any
        number of thresholds can be tried without additional privacy loss.
        """
        results = []
        for pattern, count in self.items():
            if count < threshold:
                continue
            if exact_length is not None and len(pattern) != exact_length:
                continue
            if len(pattern) < min_length:
                continue
            if max_length is not None and len(pattern) > max_length:
                continue
            results.append((pattern, count))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.trie.num_nodes

    @property
    def num_stored_patterns(self) -> int:
        return sum(1 for _ in self.items())

    @property
    def error_bound(self) -> float:
        return self.metadata.error_bound

    def mining_alpha(self, threshold: float) -> float:
        """The approximation slack with which mining at ``threshold``
        satisfies Definition 2.

        Stored patterns carry error at most ``error_bound``.  Patterns absent
        from the structure have true count below
        ``report['absent_pattern_bound']`` (they were either excluded from
        the candidate set or pruned), so they can only be "clearly frequent"
        when the threshold is small; the slack accounts for that.
        """
        absent_bound = float(
            self.report.get(
                "absent_pattern_bound",
                self.metadata.threshold + self.metadata.error_bound,
            )
        )
        return max(self.metadata.error_bound, absent_bound - threshold)

    @property
    def privacy_budget(self) -> PrivacyBudget:
        return PrivacyBudget(self.metadata.epsilon, self.metadata.delta)

    def depth(self) -> int:
        return self.trie.height()

    # ------------------------------------------------------------------
    # Serialization (post-processing)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable representation of the structure."""
        counts = {pattern: count for pattern, count in self.items()}
        # items() excludes the root, but query("") answers from it; keep the
        # empty pattern's count so save -> load preserves every query.
        root_count = self.trie.root.noisy_count
        if root_count is not None:
            counts[""] = float(root_count)
        metadata = dict(self.metadata.__dict__)
        if not metadata.get("count_backend"):
            # Structures predating the engine layer serialized without this
            # key; omitting the empty default keeps their digests stable.
            metadata.pop("count_backend", None)
        return {
            "metadata": metadata,
            "counts": counts,
            "report": self.report,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def content_digest(self) -> str:
        """SHA-256 of the canonical JSON form.

        Two structures storing the same counts, metadata and report have the
        same digest; the release store uses this to detect tampered or
        corrupted files on load.
        """
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def compiled(self, *, cache_size: int = 4096):
        """This structure flattened into a
        :class:`repro.serving.CompiledTrie` for high-throughput serving
        (pure post-processing, identical query answers)."""
        from repro.serving.compiled import CompiledTrie

        return CompiledTrie.from_structure(self, cache_size=cache_size)

    @classmethod
    def from_dict(cls, payload: dict) -> "PrivateCountingTrie":
        metadata = StructureMetadata(**payload["metadata"])
        trie = Trie()
        for pattern, count in payload["counts"].items():
            node = trie.insert(pattern)
            node.noisy_count = float(count)
        return cls(trie=trie, metadata=metadata, report=dict(payload.get("report", {})))

    @classmethod
    def from_json(cls, payload: str) -> "PrivateCountingTrie":
        return cls.from_dict(json.loads(payload))

    def save(self, path: "str | Path") -> "Path":
        """Write the structure to ``path`` as JSON and return the path.

        The file contains only the released (noisy) counts and public
        metadata, so sharing it carries no privacy cost beyond the
        construction's budget.
        """
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def load(cls, path: "str | Path") -> "PrivateCountingTrie":
        """Read a structure previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())
