"""Error metrics and mining-quality metrics.

The paper's guarantees are about the *maximum additive error* over all
patterns; the metrics here measure it empirically (against exact counts) for
any structure with a ``query`` method, and evaluate mining output with the
precision/recall-style quantities the applied literature reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, Sequence

import numpy as np

from repro.core.counts import exact_count_table
from repro.core.database import StringDatabase

__all__ = [
    "QueryableStructure",
    "ErrorSummary",
    "query_errors",
    "error_summary",
    "max_error_over_all_substrings",
    "MiningQuality",
    "mining_quality",
]


class QueryableStructure(Protocol):
    """Anything with a ``query(pattern) -> float`` method."""

    def query(self, pattern: str) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of the additive error over a set of patterns."""

    max_error: float
    mean_error: float
    median_error: float
    num_patterns: int

    def as_dict(self) -> dict:
        return {
            "max_error": self.max_error,
            "mean_error": self.mean_error,
            "median_error": self.median_error,
            "num_patterns": self.num_patterns,
        }


def query_errors(
    structure: QueryableStructure,
    database: StringDatabase,
    patterns: Sequence[str],
    *,
    delta_cap: int | None = None,
    backend: str = "auto",
) -> np.ndarray:
    """Absolute error ``|structure.query(P) - count_Delta(P, D)|`` for every
    pattern.

    The exact counts of the whole pattern set are computed as one
    :meth:`StringDatabase.count_many` batch on the requested engine backend.
    """
    cap = database.max_length if delta_cap is None else delta_cap
    exact = database.count_many(patterns, cap, backend=backend)
    estimates = np.fromiter(
        (structure.query(pattern) for pattern in patterns),
        dtype=np.float64,
        count=len(patterns),
    )
    return np.abs(estimates - exact)


def error_summary(
    structure: QueryableStructure,
    database: StringDatabase,
    patterns: Sequence[str],
    *,
    delta_cap: int | None = None,
) -> ErrorSummary:
    """Error summary over an explicit set of query patterns."""
    errors = query_errors(structure, database, patterns, delta_cap=delta_cap)
    if len(errors) == 0:
        return ErrorSummary(0.0, 0.0, 0.0, 0)
    return ErrorSummary(
        max_error=float(errors.max()),
        mean_error=float(errors.mean()),
        median_error=float(np.median(errors)),
        num_patterns=len(errors),
    )


def max_error_over_all_substrings(
    structure: QueryableStructure,
    database: StringDatabase,
    *,
    delta_cap: int | None = None,
    max_pattern_length: int | None = None,
    include_stored_patterns: bool = True,
) -> ErrorSummary:
    """Error summary over *every* distinct substring of the database (up to
    ``max_pattern_length``) plus, optionally, every pattern stored in the
    structure (so spurious stored patterns with true count 0 are charged
    too).

    This is the empirical counterpart of the theorems' "maximum additive
    error over all patterns": patterns that neither occur in the database nor
    are stored in the structure contribute error 0 by construction.
    """
    cap = database.max_length if delta_cap is None else delta_cap
    table = exact_count_table(database, cap, max_length=max_pattern_length)
    patterns = set(table)
    if include_stored_patterns and hasattr(structure, "items"):
        patterns.update(pattern for pattern, _ in structure.items())
    return error_summary(
        structure, database, sorted(patterns), delta_cap=cap
    )


@dataclass(frozen=True)
class MiningQuality:
    """Quality of a mining run against exact counts.

    ``precision``/``recall`` use the exact threshold ``tau``; the
    ``guarantee_*`` fields use the relaxed contract of Definition 2 with
    slack ``alpha`` (they must both be 1.0 for a correct algorithm whose
    error bound holds).
    """

    precision: float
    recall: float
    guarantee_recall: float
    guarantee_precision: float
    num_reported: int
    num_frequent: int

    def as_dict(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "guarantee_recall": self.guarantee_recall,
            "guarantee_precision": self.guarantee_precision,
            "num_reported": self.num_reported,
            "num_frequent": self.num_frequent,
        }


def mining_quality(
    reported: Iterable[str],
    exact_counts: Mapping[str, int],
    threshold: float,
    alpha: float,
    *,
    restrict_to_length: int | None = None,
) -> MiningQuality:
    """Precision/recall of a mining output.

    Parameters
    ----------
    reported:
        The mined patterns.
    exact_counts:
        Exact counts of every pattern occurring in the database (patterns not
        present have count 0).
    threshold:
        The mining threshold ``tau``.
    alpha:
        The approximation slack of the structure.
    restrict_to_length:
        Only evaluate patterns of this length (q-gram mining).
    """
    reported_set = {
        p
        for p in reported
        if restrict_to_length is None or len(p) == restrict_to_length
    }
    def relevant(pattern: str) -> bool:
        return restrict_to_length is None or len(pattern) == restrict_to_length

    frequent = {p for p, c in exact_counts.items() if relevant(p) and c >= threshold}
    clearly_frequent = {
        p for p, c in exact_counts.items() if relevant(p) and c >= threshold + alpha
    }
    clearly_infrequent_reported = {
        p for p in reported_set if exact_counts.get(p, 0) <= threshold - alpha
    }

    true_positives = len(reported_set & frequent)
    precision = true_positives / len(reported_set) if reported_set else 1.0
    recall = true_positives / len(frequent) if frequent else 1.0
    guarantee_recall = (
        len(reported_set & clearly_frequent) / len(clearly_frequent)
        if clearly_frequent
        else 1.0
    )
    guarantee_precision = (
        1.0 - len(clearly_infrequent_reported) / len(reported_set)
        if reported_set
        else 1.0
    )
    return MiningQuality(
        precision=precision,
        recall=recall,
        guarantee_recall=guarantee_recall,
        guarantee_precision=guarantee_precision,
        num_reported=len(reported_set),
        num_frequent=len(frequent),
    )
