"""Experiment runners.

Each function implements one experiment of the index in DESIGN.md (E1-E19)
and returns a list of row dictionaries — the same rows the corresponding
benchmark prints and EXPERIMENTS.md records.  Keeping the logic here (rather
than in the benchmark files) makes every experiment runnable from the CLI,
from notebooks and from the tests.

Two measurement conventions deserve a note:

* **Shape experiments with exact candidates.**  For the error-scaling
  experiments (E4, E5, E8, E17) the quantity of interest is the error of the
  *counting stages* (heavy-path roots + prefix sums), i.e. the alpha bounded
  by Corollaries 4+5 / 7+8.  Running the noisy candidate stage on laptop-
  sized inputs would simply prune everything (the thresholds are calibrated
  for much larger databases), so these experiments inject an exact candidate
  set and disable pruning; the noise of the counting stages is the real,
  calibrated noise.  This isolates exactly the quantity the theorems bound
  and is documented in EXPERIMENTS.md.
* **End-to-end experiments.**  The mining experiment (E9) and the q-gram
  experiments (E6, E7) run the full private pipeline, including candidate
  selection and thresholding.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Sequence

import numpy as np

from repro.api import Dataset, default_registry
from repro.core.candidate_growth import build_onestep_candidate_set
from repro.core.candidate_set import CandidateSet, build_candidate_set
from repro.core.construction import (
    annotate_trie_with_exact_counts,
    build_private_counting_structure,
)
from repro.core.counts import exact_count_table
from repro.core.database import StringDatabase
from repro.core.error_bounds import (
    baseline_error_bound,
    counting_stage_bound,
    theorem1_asymptotic,
    theorem2_asymptotic,
    theorem5_lower_bound,
    theorem6_lower_bound,
    theorem7_lower_bound,
)
from repro.core.lower_bounds import exact_marginals
from repro.core.mining import check_mining_guarantee, mine_frequent_substrings
from repro.core.params import ConstructionParams
from repro.counting import auto_backend
from repro.dp.composition import PrivacyBudget
from repro.dp.mechanisms import LaplaceMechanism
from repro.dp.prefix_sums import PrefixSumMechanism
from repro.analysis.metrics import mining_quality
from repro.strings.trie import Trie
from repro.trees.colored import (
    ColoredItem,
    exact_colored_counts,
    exact_hierarchical_counts,
    private_colored_counts,
    private_hierarchical_counts,
)
from repro.trees.hierarchy import build_balanced_hierarchy
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.range_counting import (
    leaf_sum_error_bound,
    leaf_sum_tree_counts,
    range_counting_error_bound,
    range_counting_tree_counts,
)
from repro.trees.tree_counting import tree_counting_error_bound
from repro.workloads.adversarial import (
    random_marginals_instance,
    worst_case_packing,
    worst_case_substring_pair,
)
from repro.workloads.genome import genome_with_motifs
from repro.workloads.synthetic import periodic_documents, uniform_documents
from repro.workloads.transit import transit_trajectories

__all__ = [
    "example_database",
    "run_example_counts",
    "run_candidate_figure",
    "run_prefix_sum_figure",
    "exact_candidate_set",
    "build_structure_with_exact_candidates",
    "run_error_scaling",
    "run_document_vs_substring",
    "run_qgram_error",
    "run_qgram_timing",
    "run_baseline_comparison",
    "run_mining_experiment",
    "run_packing_experiment",
    "run_substring_lb_experiment",
    "run_marginals_experiment",
    "run_tree_counting_experiment",
    "run_colored_counting_experiment",
    "run_query_time_experiment",
    "run_prefix_sum_ablation",
    "run_heavy_path_ablation",
    "run_tree_strategy_comparison",
    "run_candidate_growth_ablation",
    "run_counting_engine_benchmark",
    "run_query_many_benchmark",
    "run_serving_throughput",
    "run_concurrent_serving",
    "run_construction_benchmark",
    "run_serving_scale",
    "run_continual_release",
    "run_chaos_drill",
]


# ----------------------------------------------------------------------
# The paper's running example (Example 1 / Figures 1-3).
# ----------------------------------------------------------------------
def example_database() -> StringDatabase:
    """The database of Example 1: {aaaa, abe, absab, babe, bee, bees}."""
    return StringDatabase(["aaaa", "abe", "absab", "babe", "bee", "bees"])


def run_example_counts() -> list[dict]:
    """E1 — Example 1 and Figure 1: counts on the running example and the
    size of the trie of all suffixes."""
    database = example_database()
    suffix_trie = Trie()
    for document in database:
        for start in range(len(document)):
            suffix_trie.insert(document[start:])
    rows = []
    for pattern in ["ab", "b", "be", "a", "bee", "absab"]:
        rows.append(
            {
                "pattern": pattern,
                "substring_count": database.substring_count(pattern),
                "document_count": database.document_count(pattern),
            }
        )
    rows.append(
        {
            "pattern": "(suffix-trie nodes)",
            "substring_count": suffix_trie.num_nodes,
            "document_count": suffix_trie.height(),
        }
    )
    return rows


def run_candidate_figure() -> list[dict]:
    """E2 — Examples 2-4 and Figure 2: the exact candidate sets with
    threshold tau = 1 and the heavy path decomposition of the candidate
    trie."""
    database = example_database()
    params = ConstructionParams.pure(
        epsilon=1.0, beta=0.1, noiseless=True, threshold=1.0
    )
    candidates = build_candidate_set(database, params)
    rows = []
    for level in sorted(candidates.levels):
        rows.append(
            {
                "set": f"P_{level}",
                "size": len(candidates.levels[level]),
                "strings": " ".join(candidates.levels[level]),
            }
        )
    for length in (3, 5):
        strings = candidates.by_length.get(length, [])
        rows.append(
            {
                "set": f"C_{length}",
                "size": len(strings),
                "strings": " ".join(strings),
            }
        )
    trie = Trie(sorted(candidates.all_strings()))
    decomposition = HeavyPathDecomposition(
        trie.root, lambda node: list(node.children.values())
    )
    rows.append(
        {
            "set": "trie T_C",
            "size": trie.num_nodes,
            "strings": f"{decomposition.num_paths} heavy paths, "
            f"longest {decomposition.max_path_length()} nodes",
        }
    )
    return rows


def run_prefix_sum_figure() -> list[dict]:
    """E3 — Figure 3: the difference sequence of the topmost heavy path of
    the candidate trie and its (exact) dyadic prefix sums."""
    database = example_database()
    params = ConstructionParams.pure(
        epsilon=1.0, beta=0.1, noiseless=True, threshold=1.0
    )
    candidates = build_candidate_set(database, params)
    trie = Trie(sorted(candidates.all_strings()))
    annotate_trie_with_exact_counts(trie, database, database.max_length)
    decomposition = HeavyPathDecomposition(
        trie.root, lambda node: list(node.children.values())
    )
    top_path = decomposition.path_of(trie.root)
    counts = [node.count for node in top_path.nodes]
    differences = [counts[i] - counts[i - 1] for i in range(1, len(counts))]
    rows = []
    for offset, node in enumerate(top_path.nodes):
        rows.append(
            {
                "node": node.string() or "(root)",
                "count": counts[offset],
                "difference": differences[offset - 1] if offset > 0 else "",
                "prefix_sum": sum(differences[:offset]),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Helpers for the shape experiments.
# ----------------------------------------------------------------------
def exact_candidate_set(
    database: StringDatabase, params: ConstructionParams
) -> CandidateSet:
    """The exact candidate set (noiseless doubling, threshold 1): precisely
    the frequent-substring skeleton the private construction would converge
    to on a large database.  Used to isolate the counting-stage error in the
    shape experiments."""
    noiseless = ConstructionParams(
        budget=params.budget,
        beta=params.beta,
        delta_cap=params.delta_cap,
        max_length=params.max_length,
        threshold=1.0,
        noiseless=True,
        candidate_budget_fraction=params.candidate_budget_fraction,
    )
    return build_candidate_set(database, noiseless)


def build_structure_with_exact_candidates(
    database: StringDatabase,
    params: ConstructionParams,
    rng: np.random.Generator,
):
    """Build the counting structure with an exact candidate set and without
    pruning, so every candidate node carries a (really noisy) count whose
    error is exactly what Corollaries 4+5 / 7+8 bound."""
    candidates = exact_candidate_set(database, params)
    no_prune = ConstructionParams(
        budget=params.budget,
        beta=params.beta,
        delta_cap=params.delta_cap,
        max_length=params.max_length,
        threshold=-math.inf,
        noiseless=params.noiseless,
        candidate_budget_fraction=params.candidate_budget_fraction,
    )
    return build_private_counting_structure(
        database, no_prune, rng=rng, candidate_set=candidates
    )


def _stored_count_errors(structure, database: StringDatabase, delta_cap: int) -> np.ndarray:
    """Errors of every stored (non-root) noisy count against the exact
    count (one batched engine call for the whole structure)."""
    stored = list(structure.items())
    if not stored:
        return np.zeros(0, dtype=np.float64)
    patterns = [pattern for pattern, _ in stored]
    noisy = np.array([count for _, count in stored], dtype=np.float64)
    exact = database.count_many(patterns, delta_cap)
    return np.abs(noisy - exact)


# ----------------------------------------------------------------------
# E4 / E5: error scaling of the main structures.
# ----------------------------------------------------------------------
def run_error_scaling(
    ells: Sequence[int],
    *,
    n: int = 30,
    epsilon: float = 1.0,
    delta: float = 0.0,
    delta_cap: int | None = None,
    symbols: Sequence[str] = ("a", "b", "c", "d"),
    seed: int = 7,
    trials: int = 3,
) -> list[dict]:
    """E4/E5 — maximum stored-count error of the Theorem 1/2 structures as a
    function of ell, next to the analytic bound and the paper's asymptotic
    shape."""
    rows = []
    for ell in ells:
        rng = np.random.default_rng(seed + ell)
        database = uniform_documents(n, ell, symbols, rng)
        if delta > 0:
            params = ConstructionParams.approximate(
                epsilon, delta, beta=0.1, delta_cap=delta_cap
            )
        else:
            params = ConstructionParams.pure(epsilon, beta=0.1, delta_cap=delta_cap)
        cap = params.resolve_delta_cap(ell)
        max_errors = []
        for trial in range(trials):
            structure = build_structure_with_exact_candidates(
                database, params, np.random.default_rng(seed * 1000 + ell * 10 + trial)
            )
            errors = _stored_count_errors(structure, database, cap)
            max_errors.append(float(errors.max()) if len(errors) else 0.0)
        bound = counting_stage_bound(
            n,
            ell,
            params,
            trie_size=structure.report["trie_nodes_after_pruning"],
            num_paths=structure.report["num_heavy_paths"],
            max_path_length=structure.report["max_heavy_path_length"],
        )
        if delta > 0:
            asymptotic = theorem2_asymptotic(
                n, ell, len(symbols), epsilon, delta, cap, beta=0.1
            )
        else:
            asymptotic = theorem1_asymptotic(n, ell, len(symbols), epsilon, beta=0.1)
        rows.append(
            {
                "ell": ell,
                "n": n,
                "epsilon": epsilon,
                "delta": delta,
                "delta_cap": cap,
                "max_error_mean": float(np.mean(max_errors)),
                "max_error_worst": float(np.max(max_errors)),
                "analytic_bound": bound,
                "paper_asymptotic": asymptotic,
                "stored_patterns": structure.num_stored_patterns,
            }
        )
    return rows


def run_document_vs_substring(
    ells: Sequence[int],
    *,
    n: int = 30,
    epsilon: float = 1.0,
    delta: float = 1e-6,
    symbols: Sequence[str] = ("a", "b", "c", "d"),
    seed: int = 11,
) -> list[dict]:
    """E5 — under approximate DP, Document Count (Delta = 1) should beat
    Substring Count (Delta = ell) by roughly sqrt(ell)."""
    rows = []
    for ell in ells:
        rng = np.random.default_rng(seed + ell)
        database = uniform_documents(n, ell, symbols, rng)
        errors = {}
        for label, cap in (("document", 1), ("substring", None)):
            params = ConstructionParams.approximate(
                epsilon, delta, beta=0.1, delta_cap=cap
            )
            structure = build_structure_with_exact_candidates(
                database, params, np.random.default_rng(seed * 97 + ell)
            )
            observed = _stored_count_errors(
                structure, database, params.resolve_delta_cap(ell)
            )
            errors[label] = float(observed.max()) if len(observed) else 0.0
        ratio = errors["substring"] / errors["document"] if errors["document"] else float("nan")
        rows.append(
            {
                "ell": ell,
                "document_count_error": errors["document"],
                "substring_count_error": errors["substring"],
                "ratio": ratio,
                "sqrt_ell": math.sqrt(ell),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E6 / E7: q-gram structures.
# ----------------------------------------------------------------------
def run_qgram_error(
    qs: Sequence[int],
    *,
    n: int = 60,
    ell: int = 20,
    epsilon: float = 1.0,
    delta: float = 1e-6,
    seed: int = 5,
) -> list[dict]:
    """E6/E7 — stored-count error of the two q-gram structures (pure vs
    approximate DP) with pruning disabled, as a function of q."""
    rng = np.random.default_rng(seed)
    database = genome_with_motifs(n, ell, rng)
    rows = []
    for q in qs:
        pure_params = ConstructionParams.pure(
            epsilon, beta=0.1, threshold=-math.inf
        )
        approx_params = ConstructionParams.approximate(
            epsilon, delta, beta=0.1, threshold=-math.inf
        )
        # Exact candidate q-grams (noiseless doubling with threshold 1), so
        # the measured error isolates the counting stage — same convention as
        # the E4/E5 shape experiments.
        exact_params = ConstructionParams.pure(
            epsilon, beta=0.1, noiseless=True, threshold=1.0
        )
        exact_candidates = build_candidate_set(
            database, exact_params, doubling_limit=q, lengths=[q]
        )
        pure = default_registry().build(
            "qgram-t3",
            database,
            pure_params,
            rng=np.random.default_rng(seed + q),
            q=q,
            candidate_qgrams=exact_candidates.by_length.get(q, []),
        )
        approx = default_registry().build(
            "qgram-t4",
            database,
            approx_params,
            rng=np.random.default_rng(seed + 100 + q),
            q=q,
        )
        cap = database.max_length
        pure_errors = _stored_count_errors(pure, database, cap)
        approx_errors = _stored_count_errors(approx, database, cap)
        rows.append(
            {
                "q": q,
                "pure_max_error": float(pure_errors.max()) if len(pure_errors) else 0.0,
                "approx_max_error": float(approx_errors.max()) if len(approx_errors) else 0.0,
                "pure_bound": pure.error_bound,
                "approx_bound": approx.error_bound,
                "pure_stored": pure.num_stored_patterns,
                "approx_stored": approx.num_stored_patterns,
            }
        )
    return rows


def run_qgram_timing(
    sizes: Sequence[tuple[int, int]],
    *,
    q: int = 4,
    epsilon: float = 1.0,
    delta: float = 1e-6,
    seed: int = 3,
) -> list[dict]:
    """E7 — construction time of the Theorem 4 structure as the input size
    ``n * ell`` grows (the paper claims near-linear time)."""
    rows = []
    for n, ell in sizes:
        rng = np.random.default_rng(seed + n)
        database = genome_with_motifs(n, ell, rng)
        params = ConstructionParams.approximate(epsilon, delta, beta=0.1)
        started = time.perf_counter()
        structure = default_registry().build(
            "qgram-t4", database, params, rng=np.random.default_rng(seed), q=q
        )
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "n": n,
                "ell": ell,
                "n*ell": n * ell,
                "construction_seconds": elapsed,
                "stored_qgrams": structure.num_stored_patterns,
            }
        )
    # Normalised column: seconds per input character, which should stay
    # roughly flat (up to the O(N log N) suffix-array substitution).
    for row in rows:
        row["seconds_per_char"] = row["construction_seconds"] / row["n*ell"]
    return rows


# ----------------------------------------------------------------------
# E8: baseline comparison.
# ----------------------------------------------------------------------
def run_baseline_comparison(
    ells: Sequence[int],
    *,
    n: int = 12,
    epsilon: float = 1.0,
    seed: int = 13,
    trials: int = 3,
) -> list[dict]:
    """E8 — the simple-trie baseline's error scales like ell^2 while the
    heavy-path structure scales like ell * polylog; on long documents the
    heavy-path structure wins and the win factor grows with ell.

    Uses the highly repetitive workload so the candidate trie stays small
    even for ell in the thousands (see ``periodic_documents``); both methods
    are measured on their stored counts with pruning disabled.
    """
    rows = []
    for ell in ells:
        rng = np.random.default_rng(seed + ell)
        database = periodic_documents(n, ell, rng)
        params = ConstructionParams.pure(epsilon, beta=0.1)
        baseline_params = ConstructionParams.pure(
            epsilon, beta=0.1, threshold=-math.inf
        )
        cap = database.max_length
        ours_max, baseline_max = [], []
        ours = None
        for trial in range(trials):
            ours = build_structure_with_exact_candidates(
                database, params, np.random.default_rng(seed * 31 + ell * 7 + trial)
            )
            baseline = default_registry().build(
                "baseline",
                database,
                baseline_params,
                rng=np.random.default_rng(seed * 77 + ell * 7 + trial),
                max_nodes=200,
                max_depth=4,
            )
            ours_errors = _stored_count_errors(ours, database, cap)
            baseline_errors = _stored_count_errors(baseline, database, cap)
            ours_max.append(float(ours_errors.max()) if len(ours_errors) else 0.0)
            baseline_max.append(
                float(baseline_errors.max()) if len(baseline_errors) else 0.0
            )
        row = {
            "ell": ell,
            "heavy_path_max_error": float(np.mean(ours_max)),
            "baseline_max_error": float(np.mean(baseline_max)),
            "heavy_path_bound": counting_stage_bound(
                n,
                ell,
                params,
                trie_size=ours.report["trie_nodes_after_pruning"],
                num_paths=ours.report["num_heavy_paths"],
                max_path_length=ours.report["max_heavy_path_length"],
            ),
            "baseline_bound": baseline_error_bound(
                n, ell, baseline_params, max_nodes=200
            ),
        }
        if row["heavy_path_max_error"]:
            row["baseline_over_ours"] = (
                row["baseline_max_error"] / row["heavy_path_max_error"]
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# E9: mining.
# ----------------------------------------------------------------------
def run_mining_experiment(
    *,
    workload: str = "genome",
    n: int = 300,
    ell: int = 12,
    epsilons: Sequence[float] = (5.0, 20.0, 50.0),
    seed: int = 23,
) -> list[dict]:
    """E9 — end-to-end private frequent-substring mining: the full pipeline
    (noisy candidates, noisy counts, pruning), mined at the structure's own
    threshold, scored against exact counts."""
    rng = np.random.default_rng(seed)
    if workload == "genome":
        database = genome_with_motifs(n, ell, rng, planting_probability=0.7)
    elif workload == "transit":
        database = transit_trajectories(n, ell, rng)
    else:
        raise ValueError(f"unknown workload {workload!r}")
    cap = database.max_length
    exact = exact_count_table(database, cap, max_length=6)
    rows = []
    for epsilon in epsilons:
        structure = (
            Dataset.from_database(database)
            .with_budget(epsilon)
            .with_beta(0.1)
            .build("heavy-path", rng=np.random.default_rng(seed + int(epsilon)))
        )
        threshold = structure.metadata.threshold
        result = mine_frequent_substrings(structure, threshold)
        quality = mining_quality(
            result.pattern_set(), exact, threshold, structure.error_bound
        )
        violations = check_mining_guarantee(result, exact)
        rows.append(
            {
                "workload": workload,
                "epsilon": epsilon,
                "threshold": threshold,
                "alpha": structure.error_bound,
                "num_reported": quality.num_reported,
                "num_frequent": quality.num_frequent,
                "precision": quality.precision,
                "recall": quality.recall,
                "guarantee_ok": violations.ok,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E10-E12: lower bounds.
# ----------------------------------------------------------------------
def run_packing_experiment(
    ells: Sequence[int],
    *,
    n: int = 40,
    epsilon: float = 1.0,
    seed: int = 29,
) -> list[dict]:
    """E10 — Theorem 5 packing instances: measured error of the pure-DP
    structure on the planted patterns sits between the packing lower bound
    and the Theorem 1 upper bound."""
    rows = []
    for ell in ells:
        rng = np.random.default_rng(seed + ell)
        copies = min(n, max(2, n // 2))
        instance = worst_case_packing(
            ell, n, copies, rng, num_patterns=2, pattern_length=4
        )
        params = ConstructionParams.pure(epsilon, beta=0.1)
        structure = build_structure_with_exact_candidates(
            instance.database, params, np.random.default_rng(seed * 13 + ell)
        )
        cap = instance.database.max_length
        exact = instance.database.count_many(instance.planted_patterns, cap)
        errors = [
            abs(structure.query(pattern) - count)
            for pattern, count in zip(instance.planted_patterns, exact)
        ]
        rows.append(
            {
                "ell": ell,
                "planted_patterns": len(instance.planted_patterns),
                "measured_error": float(np.max(errors)),
                "packing_lower_bound": theorem5_lower_bound(
                    n, ell, instance.database.alphabet_size, epsilon
                ),
                "theorem1_asymptotic": theorem1_asymptotic(
                    n, ell, instance.database.alphabet_size, epsilon
                ),
            }
        )
    return rows


def run_substring_lb_experiment(
    ells: Sequence[int],
    *,
    n: int = 10,
    epsilon: float = 1.0,
    seed: int = 31,
    trials: int = 5,
) -> list[dict]:
    """E11 — Theorem 6 worst-case pair: the error on the pattern 'a' for the
    pair of neighboring databases grows linearly in ell, matching the
    Omega(ell) lower bound (and our O(ell polylog) upper bound)."""
    rows = []
    for ell in ells:
        database, neighbor, pattern = worst_case_substring_pair(ell, n)
        params = ConstructionParams.pure(epsilon, beta=0.1)
        errors_d, errors_d_prime = [], []
        for trial in range(trials):
            for db, bucket in ((database, errors_d), (neighbor, errors_d_prime)):
                structure = build_structure_with_exact_candidates(
                    db, params, np.random.default_rng(seed + ell * 13 + trial)
                )
                exact = db.count(pattern, db.max_length)
                bucket.append(abs(structure.query(pattern) - exact))
        rows.append(
            {
                "ell": ell,
                "pattern": pattern,
                "error_on_D": float(np.mean(errors_d)),
                "error_on_D_prime": float(np.mean(errors_d_prime)),
                "max_error": float(max(np.max(errors_d), np.max(errors_d_prime))),
                "lower_bound": theorem6_lower_bound(ell),
            }
        )
    return rows


def run_marginals_experiment(
    dimensions: Sequence[int],
    *,
    n: int = 40,
    epsilon: float = 1.0,
    delta: float = 1e-6,
    seed: int = 37,
) -> list[dict]:
    """E12 — Theorem 7 reduction: answer 1-way marginals through the
    Document Count structure; the marginal error should track sqrt(d)/(n eps)
    under approximate DP and d/(n eps) under pure DP."""
    rows = []
    for d in dimensions:
        rng = np.random.default_rng(seed + d)
        matrix, reduction = random_marginals_instance(n, d, rng)
        truth = exact_marginals(matrix)
        for flavour, params in (
            ("pure", ConstructionParams.pure(epsilon, beta=0.1, delta_cap=1)),
            (
                "approx",
                ConstructionParams.approximate(
                    epsilon, delta, beta=0.1, delta_cap=1
                ),
            ),
        ):
            structure = build_structure_with_exact_candidates(
                reduction.database, params, np.random.default_rng(seed * 7 + d)
            )
            counts = [structure.query(p) for p in reduction.column_patterns]
            estimates = reduction.marginals_from_counts(counts)
            error = float(np.max(np.abs(estimates - truth)))
            rows.append(
                {
                    "d": d,
                    "flavour": flavour,
                    "marginal_error": error,
                    "document_count_error": error * n,
                    "lower_bound": theorem7_lower_bound(
                        n,
                        reduction.database.max_length,
                        reduction.database.alphabet_size,
                        epsilon,
                        delta if flavour == "approx" else 0.0,
                    ),
                }
            )
    return rows


# ----------------------------------------------------------------------
# E13 / E14: tree counting.
# ----------------------------------------------------------------------
def run_tree_counting_experiment(
    universe_sizes: Sequence[int],
    *,
    num_items: int = 500,
    epsilon: float = 1.0,
    branching: int = 2,
    seed: int = 41,
) -> list[dict]:
    """E13 — Theorem 8 on hierarchical histograms: the max error grows only
    polylogarithmically with the universe size."""
    rows = []
    for universe_size in universe_sizes:
        rng = np.random.default_rng(seed + universe_size)
        universe = list(range(universe_size))
        tree = build_balanced_hierarchy(universe, branching)
        elements = rng.integers(0, universe_size, size=num_items).tolist()
        exact = exact_hierarchical_counts(tree, elements)
        result = private_hierarchical_counts(
            tree,
            elements,
            budget=PrivacyBudget(epsilon),
            beta=0.1,
            rng=np.random.default_rng(seed * 3 + universe_size),
        )
        errors = [abs(result[node] - exact[node]) for node in tree.nodes()]
        rows.append(
            {
                "universe": universe_size,
                "tree_nodes": tree.num_nodes,
                "height": tree.height(),
                "max_error": float(np.max(errors)),
                "mean_error": float(np.mean(errors)),
                "analytic_bound": result.error_bound,
            }
        )
    return rows


def run_colored_counting_experiment(
    universe_sizes: Sequence[int],
    *,
    num_items: int = 400,
    num_colors: int = 12,
    epsilon: float = 1.0,
    delta: float = 1e-6,
    seed: int = 43,
) -> list[dict]:
    """E14 — colored tree counting under pure and approximate DP
    (Theorems 8 and 9)."""
    rows = []
    for universe_size in universe_sizes:
        rng = np.random.default_rng(seed + universe_size)
        universe = list(range(universe_size))
        tree = build_balanced_hierarchy(universe, 2)
        items = [
            ColoredItem(
                element=int(rng.integers(0, universe_size)),
                color=int(rng.integers(0, num_colors)),
            )
            for _ in range(num_items)
        ]
        exact = exact_colored_counts(tree, items)
        for flavour, budget in (
            ("pure", PrivacyBudget(epsilon)),
            ("approx", PrivacyBudget(epsilon, delta)),
        ):
            result = private_colored_counts(
                tree,
                items,
                budget=budget,
                beta=0.1,
                rng=np.random.default_rng(seed * 5 + universe_size),
            )
            errors = [abs(result[node] - exact[node]) for node in tree.nodes()]
            rows.append(
                {
                    "universe": universe_size,
                    "flavour": flavour,
                    "max_error": float(np.max(errors)),
                    "mean_error": float(np.mean(errors)),
                    "analytic_bound": result.error_bound,
                }
            )
    return rows


# ----------------------------------------------------------------------
# E15: complexity claims.
# ----------------------------------------------------------------------
def run_query_time_experiment(
    pattern_lengths: Sequence[int],
    *,
    n: int = 50,
    ell: int = 64,
    seed: int = 47,
    repetitions: int = 2000,
) -> list[dict]:
    """E15 — query time is linear in the pattern length (and independent of
    n and ell).

    The repetitive workload keeps the candidate trie small (its size does not
    affect query time, which only walks one root-to-node path) while still
    providing stored patterns of every requested length up to ``ell``.
    """
    rng = np.random.default_rng(seed)
    database = periodic_documents(n, ell, rng)
    params = ConstructionParams.pure(1.0, beta=0.1, noiseless=True, threshold=1.0)
    structure = build_private_counting_structure(
        database, params, rng=np.random.default_rng(seed)
    )
    stored = structure.patterns()
    stored.sort(key=len)
    rows = []
    for length in pattern_lengths:
        candidates = [p for p in stored if len(p) == length]
        pattern = candidates[0] if candidates else "a" * length
        started = time.perf_counter()
        for _ in range(repetitions):
            structure.query(pattern)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "pattern_length": length,
                "present": bool(candidates),
                "microseconds_per_query": 1e6 * elapsed / repetitions,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E16: binary-tree prefix sums vs naive noise.
# ----------------------------------------------------------------------
def run_prefix_sum_ablation(
    lengths: Sequence[int],
    *,
    epsilon: float = 1.0,
    sensitivity: float = 1.0,
    seed: int = 53,
    trials: int = 5,
) -> list[dict]:
    """E16 — the binary-tree mechanism's prefix-sum error grows
    polylogarithmically in T, while naively splitting the budget over T
    element releases grows polynomially."""
    rows = []
    for length in lengths:
        rng = np.random.default_rng(seed + length)
        sequence = rng.integers(0, 5, size=length).astype(np.float64)
        exact_prefixes = np.cumsum(sequence)
        tree_errors = []
        naive_errors = []
        for trial in range(trials):
            trial_rng = np.random.default_rng(seed * 101 + length * 10 + trial)
            mechanism = PrefixSumMechanism(
                LaplaceMechanism(epsilon),
                total_l1_sensitivity=sensitivity,
                max_length=length,
            )
            released = mechanism.release(sequence, trial_rng)
            tree_errors.append(
                float(np.max(np.abs(released.values - exact_prefixes)))
            )
            # Naive: split the budget across T independent element releases
            # (each element gets Laplace noise of scale T * sensitivity /
            # epsilon) and sum them up.
            naive_noise = trial_rng.laplace(
                0.0, length * sensitivity / epsilon, size=length
            )
            naive_prefixes = np.cumsum(sequence + naive_noise)
            naive_errors.append(
                float(np.max(np.abs(naive_prefixes - exact_prefixes)))
            )
        rows.append(
            {
                "T": length,
                "binary_tree_max_error": float(np.mean(tree_errors)),
                "naive_max_error": float(np.mean(naive_errors)),
                "binary_tree_bound": PrefixSumMechanism(
                    LaplaceMechanism(epsilon),
                    total_l1_sensitivity=sensitivity,
                    max_length=length,
                ).sup_error_bound(1, 0.1),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E17: ablation of the heavy-path design.
# ----------------------------------------------------------------------
def run_heavy_path_ablation(
    ells: Sequence[int],
    *,
    n: int = 12,
    epsilon: float = 1.0,
    seed: int = 59,
    trials: int = 3,
) -> list[dict]:
    """E17 — design-choice ablation: on the same (exact) candidate trie,
    compare two ways of releasing all node counts with the same budget:

    * per-node independent noise calibrated to the naive ``ell (ell + 1)``
      sensitivity (what the simple approach effectively pays), and
    * the heavy-path decomposition with noisy roots + noisy prefix sums
      (the paper's design, sensitivity ``O(ell log)`` per release).

    Uses the repetitive workload so ell can reach the regime where the
    ``ell`` vs ``ell^2`` gap dominates the polylog factors.
    """
    rows = []
    for ell in ells:
        rng = np.random.default_rng(seed + ell)
        database = periodic_documents(n, ell, rng)
        params = ConstructionParams.pure(epsilon, beta=0.1)
        candidates = exact_candidate_set(database, params)
        trie = Trie(sorted(candidates.all_strings()))
        annotate_trie_with_exact_counts(trie, database, database.max_length)
        nodes = [node for node in trie.iter_nodes() if node is not trie.root]

        per_node_max, heavy_max = [], []
        for trial in range(trials):
            per_node_rng = np.random.default_rng(seed * 7 + ell * 11 + trial)
            per_node_noise = per_node_rng.laplace(
                0.0, ell * (ell + 1) / epsilon, size=len(nodes)
            )
            per_node_max.append(
                float(np.max(np.abs(per_node_noise))) if len(nodes) else 0.0
            )
            structure = build_structure_with_exact_candidates(
                database,
                ConstructionParams.pure(epsilon, beta=0.1),
                np.random.default_rng(seed * 11 + ell * 11 + trial),
            )
            ours = _stored_count_errors(structure, database, database.max_length)
            heavy_max.append(float(ours.max()) if len(ours) else 0.0)
        row = {
            "ell": ell,
            "trie_nodes": len(nodes) + 1,
            "per_node_noise_max_error": float(np.mean(per_node_max)),
            "heavy_path_max_error": float(np.mean(heavy_max)),
        }
        if row["heavy_path_max_error"]:
            row["per_node_over_heavy"] = (
                row["per_node_noise_max_error"] / row["heavy_path_max_error"]
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# E18: strategies for private hierarchical counting.
# ----------------------------------------------------------------------
def run_tree_strategy_comparison(
    universe_sizes: Sequence[int],
    *,
    num_items: int = 400,
    epsilon: float = 1.0,
    beta: float = 0.1,
    seed: int = 61,
    trials: int = 3,
) -> list[dict]:
    """E18 — hierarchical-histogram strategies on the same tree and items:

    * the paper's heavy-path algorithm (Theorem 8),
    * the range-counting reduction the paper cites in Section 1.1.3
      (binary-tree mechanism over the ordered leaf counts), and
    * the leaf-sum baseline of Zhang et al. [72] (independent noisy leaves,
      internal nodes obtained by summing the noisy leaves below).

    The first two have error polylogarithmic in the universe size; the
    leaf-sum baseline accumulates the noise of every descendant leaf in the
    root, so its error grows polynomially with the universe.
    """
    budget = PrivacyBudget(epsilon)
    rows = []
    for universe in universe_sizes:
        rng = np.random.default_rng(seed + universe)
        tree = build_balanced_hierarchy(list(range(universe)), branching=2)
        elements = rng.integers(0, universe, size=num_items).tolist()
        exact = exact_hierarchical_counts(tree, elements)
        leaf_counts = {leaf: float(exact[leaf]) for leaf in tree.leaves()}

        heavy_errors, range_errors, leaf_sum_errors = [], [], []
        for trial in range(trials):
            trial_rng = np.random.default_rng(seed * 101 + universe * 13 + trial)
            heavy = private_hierarchical_counts(
                tree, elements, budget=budget, beta=beta, rng=trial_rng
            )
            heavy_errors.append(
                max(abs(heavy[node] - exact[node]) for node in tree.nodes())
            )
            range_estimates, _ = range_counting_tree_counts(
                tree.root,
                tree.children,
                leaf_counts,
                leaf_sensitivity=2.0,
                budget=budget,
                beta=beta,
                rng=trial_rng,
            )
            range_errors.append(
                max(abs(range_estimates[node] - exact[node]) for node in tree.nodes())
            )
            leaf_estimates, _ = leaf_sum_tree_counts(
                tree.root,
                tree.children,
                leaf_counts,
                leaf_sensitivity=2.0,
                budget=budget,
                beta=beta,
                rng=trial_rng,
            )
            leaf_sum_errors.append(
                max(abs(leaf_estimates[node] - exact[node]) for node in tree.nodes())
            )

        decomposition = HeavyPathDecomposition(tree.root, tree.children)
        rows.append(
            {
                "universe": universe,
                "tree_nodes": tree.num_nodes,
                "heavy_path_max_error": float(np.mean(heavy_errors)),
                "range_counting_max_error": float(np.mean(range_errors)),
                "leaf_sum_max_error": float(np.mean(leaf_sum_errors)),
                "heavy_path_bound": tree_counting_error_bound(
                    tree.num_nodes,
                    tree.height(),
                    decomposition.num_paths,
                    leaf_sensitivity=2.0,
                    node_sensitivity=1.0,
                    budget=budget,
                    beta=beta,
                ),
                "range_counting_bound": range_counting_error_bound(
                    universe, leaf_sensitivity=2.0, budget=budget, beta=beta
                ),
                "leaf_sum_bound": leaf_sum_error_bound(
                    universe, leaf_sensitivity=2.0, budget=budget, beta=beta
                ),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E19: candidate-growth ablation (doubling vs one-letter extension).
# ----------------------------------------------------------------------
def run_candidate_growth_ablation(
    ells: Sequence[int],
    *,
    n: int = 10,
    epsilon: float = 1.0,
    seed: int = 67,
) -> list[dict]:
    """E19 — ablation of the candidate-growth strategy.

    The paper doubles the candidate length every round, so the privacy budget
    is split over only ``floor(log2 ell) + 1`` releases; prior work (Chen et
    al. [18], Kim et al. [51]) extends candidates one letter at a time and
    must split the budget over ``ell`` releases.  The per-level error alpha —
    the smallest count a pattern needs to reliably survive pruning — is the
    quantity that degrades.  The structural coverage of the two strategies is
    compared with exact (noiseless) counts and threshold 1, so the comparison
    isolates the noise calibration from sampling luck.
    """
    rows = []
    for ell in ells:
        rng = np.random.default_rng(seed + ell)
        database = periodic_documents(n, ell, rng)

        noisy_params = ConstructionParams.pure(epsilon, beta=0.1)
        started = time.perf_counter()
        doubling_noiseless = build_candidate_set(
            database,
            ConstructionParams.pure(epsilon, beta=0.1, noiseless=True, threshold=1.0),
            rng=np.random.default_rng(seed),
        )
        doubling_seconds = time.perf_counter() - started
        started = time.perf_counter()
        onestep_noiseless = build_onestep_candidate_set(
            database,
            ConstructionParams.pure(epsilon, beta=0.1, noiseless=True, threshold=1.0),
            rng=np.random.default_rng(seed),
        )
        onestep_seconds = time.perf_counter() - started

        # Noise calibration of the two strategies under the same total budget.
        ell_resolved = noisy_params.resolve_max_length(database.max_length)
        delta_cap = noisy_params.resolve_delta_cap(ell_resolved)
        doubling_levels = int(math.floor(math.log2(max(1, ell_resolved)))) + 1
        onestep_levels = max(1, ell_resolved)
        doubling_mechanism = LaplaceMechanism(epsilon / doubling_levels)
        onestep_mechanism = LaplaceMechanism(epsilon / onestep_levels)
        from repro.core.candidate_growth import onestep_candidate_alpha
        from repro.core.candidate_set import candidate_alpha

        alpha_doubling = candidate_alpha(
            database.num_documents,
            ell_resolved,
            database.alphabet_size,
            doubling_mechanism,
            noisy_params.beta / doubling_levels,
            delta_cap,
        )
        alpha_onestep = onestep_candidate_alpha(
            database.num_documents,
            ell_resolved,
            database.alphabet_size,
            onestep_mechanism,
            noisy_params.beta / onestep_levels,
            delta_cap,
        )
        rows.append(
            {
                "ell": ell_resolved,
                "doubling_levels": doubling_levels,
                "onestep_levels": onestep_levels,
                "alpha_doubling": float(alpha_doubling),
                "alpha_onestep": float(alpha_onestep),
                "alpha_ratio": float(alpha_onestep / alpha_doubling),
                "doubling_candidates": doubling_noiseless.size,
                "onestep_candidates": onestep_noiseless.size,
                "doubling_seconds": doubling_seconds,
                "onestep_seconds": onestep_seconds,
            }
        )
    return rows


def run_counting_engine_benchmark(
    batch_sizes: Sequence[int] = (16, 64, 256, 1024),
    *,
    n: int = 800,
    ell: int = 12,
    delta_cap: int | None = None,
    seed: int = 17,
    naive_limit: int = 64,
    timing_reps: int = 3,
) -> list[dict]:
    """E21 — counting-engine equivalence and speedup curve.

    Builds candidate-level-shaped batches (all pairwise concatenations of
    the collection's 3-grams, exactly the shape of a doubling level
    ``P_{2^k} x P_{2^k}``), counts each batch with every
    :mod:`repro.counting` backend, checks the results are bitwise identical,
    and reports the per-batch timings.  The headline column is
    ``ac_speedup_vs_sa``: the single-pass Aho-Corasick engine against
    per-pattern suffix-array queries, which must reach >= 5x on batches of
    >= 256 patterns (the acceptance criterion of
    ``benchmarks/bench_counting_engines.py``).  The naive reference engine
    is only timed on small batches (``naive_limit``) — it is quadratic —
    but its counts are still the ground truth the others must match there.
    """
    from repro.strings.qgrams import qgram_substring_counts

    rng = np.random.default_rng(seed)
    database = genome_with_motifs(n, ell, rng)
    cap = database.max_length if delta_cap is None else delta_cap
    # Frequent 3-grams first, so truncating to a batch size keeps the batch
    # shaped like a pruned level rather than an arbitrary sample; the pair
    # pool inherits that order (frequent x frequent concatenations first).
    frequency = qgram_substring_counts(list(database), 3)
    base = sorted(frequency, key=lambda g: (-frequency[g], g))
    pool: list[str] = []
    seen: set[str] = set()
    for left in base:
        for right in base:
            candidate = left + right
            if candidate not in seen:
                seen.add(candidate)
                pool.append(candidate)
    corpus_length = database.total_length

    def best_seconds(run) -> float:
        return min(_timed(run) for _ in range(timing_reps))

    rows = []
    for batch in batch_sizes:
        patterns = pool[: min(batch, len(pool))]
        sa_engine = database.engine("suffix-array")
        ac_engine = database.engine("aho-corasick")
        sa_counts = sa_engine.count_many(patterns, cap)
        ac_counts = ac_engine.count_many(patterns, cap)
        engines_equal = bool(np.array_equal(sa_counts, ac_counts))
        sa_seconds = best_seconds(lambda: sa_engine.count_many(patterns, cap))
        ac_seconds = best_seconds(lambda: ac_engine.count_many(patterns, cap))
        row = {
            "batch": len(patterns),
            "corpus_chars": corpus_length,
            "delta_cap": cap,
            "auto_backend": auto_backend(len(patterns), corpus_length),
            "sa_seconds": sa_seconds,
            "ac_seconds": ac_seconds,
            "ac_speedup_vs_sa": sa_seconds / ac_seconds if ac_seconds else float("inf"),
            "engines_equal": engines_equal,
        }
        if len(patterns) <= naive_limit:
            naive_engine = database.engine("naive")
            naive_counts = naive_engine.count_many(patterns, cap)
            row["naive_seconds"] = best_seconds(
                lambda: naive_engine.count_many(patterns, cap)
            )
            row["engines_equal"] = engines_equal and bool(
                np.array_equal(naive_counts, sa_counts)
            )
        rows.append(row)
    return rows


def run_query_many_benchmark(
    batch_sizes: Sequence[int] = (64, 256, 512, 1024),
    *,
    n: int = 2000,
    ell: int = 16,
    epsilon: float = 60.0,
    delta: float = 1e-6,
    seed: int = 19,
    hit_fraction: float = 0.85,
    timing_reps: int = 5,
) -> list[dict]:
    """E22 — batched ``query_many`` vs per-pattern ``query`` loops for every
    registered structure kind.

    Builds one counter per kind through the unified ``Dataset`` façade on
    the genome workload (per-kind parameters keep every construction
    laptop-sized: the near-linear Theorem 4 structure carries the long
    ``q = 12`` grams, Theorem 3 a cheaper ``q = 6``), then replays a
    serving-style pattern mix through both query paths: ``hit_fraction``
    stored patterns, the rest random document windows — fixed-length
    windows for the q-gram kinds, whose traffic rides the compiled trie's
    uniform-length batch path.  Batched answers must be bit-for-bit equal
    to the loop; the acceptance headline
    (``benchmarks/bench_query_many.py``) is a >= 5x speedup at >= 512
    patterns on the q-gram structure.  Timings take the best of
    ``timing_reps`` runs.
    """
    rng = np.random.default_rng(seed)
    database = genome_with_motifs(n, ell, rng)
    dataset = Dataset.from_database(database).with_beta(0.1)
    builds: list[tuple[str, Dataset, dict]] = [
        ("heavy-path", dataset.with_budget(epsilon).with_threshold(30.0), {}),
        ("qgram-t3", dataset.with_budget(epsilon).with_threshold(20.0), {"q": 6}),
        (
            "qgram-t4",
            dataset.with_budget(epsilon, delta).with_threshold(5.0),
            {"q": 12},
        ),
        (
            "baseline",
            dataset.with_budget(epsilon),
            {"max_nodes": 2000, "max_depth": 8},
        ),
    ]
    counters = {
        kind: configured.build(kind, rng=np.random.default_rng(seed + 1), **kwargs)
        for kind, configured, kwargs in builds
    }

    documents = list(database)
    max_batch = max(batch_sizes)

    def pattern_pool(counter) -> list[str]:
        """Serving-style traffic for one release: mostly stored patterns
        (the hits analysts actually ask about), padded with random document
        windows — of the release's fixed length for q-gram structures."""
        query_rng = np.random.default_rng(seed + 2)
        stored = sorted(dict(counter.items()))
        q = counter.metadata.qgram_length
        pool: list[str] = []
        while len(pool) < max_batch:
            if stored and query_rng.random() < hit_fraction:
                pool.append(stored[query_rng.integers(len(stored))])
            else:
                document = documents[query_rng.integers(len(documents))]
                width = q if q is not None else 1 + int(query_rng.integers(8))
                lo = query_rng.integers(max(1, len(document) - width + 1))
                pool.append(document[lo : lo + width])
        return pool

    def best_seconds(run: Callable[[], object]) -> float:
        return min(_timed(run) for _ in range(timing_reps))

    rows = []
    for kind, counter in counters.items():
        pool = pattern_pool(counter)
        counter.query_many(pool[:1])  # warm the compiled batch view
        for batch in batch_sizes:
            patterns = pool[:batch]
            loop_counts = np.array([counter.query(p) for p in patterns])
            batch_counts = counter.query_many(patterns)
            loop_seconds = best_seconds(
                lambda: [counter.query(p) for p in patterns]
            )
            batch_seconds = best_seconds(lambda: counter.query_many(patterns))
            rows.append(
                {
                    "kind": kind,
                    "batch": batch,
                    "stored_patterns": counter.num_stored_patterns,
                    "loop_seconds": loop_seconds,
                    "query_many_seconds": batch_seconds,
                    "speedup": loop_seconds / batch_seconds
                    if batch_seconds
                    else float("inf"),
                    "bitwise_equal": bool(np.array_equal(loop_counts, batch_counts)),
                }
            )
    return rows


def run_serving_throughput(
    workloads: Sequence[str] = ("genome", "transit"),
    n: int = 2000,
    num_queries: int = 20_000,
    epsilon: float = 60.0,
    threshold: float = 30.0,
    hit_fraction: float = 0.8,
    timing_reps: int = 5,
    seed: int = 7,
) -> list[dict]:
    """E20 — query-serving throughput: per-node trie loops vs the compiled
    array trie (single, LRU-cached and vectorized batch paths).

    Builds one released structure per workload (a low pruning threshold
    keeps it serving-sized), then replays a serving-style traffic mix:
    ``hit_fraction`` of the queries are published patterns (sampled with
    probability proportional to length — analysts ask about the longer,
    more informative motifs), the rest are random document substrings.
    Every path must answer *identical* counts (post-processing parity);
    throughput is the best of ``timing_reps`` runs, which is robust to
    scheduler noise.
    """
    from repro.serving import CompiledTrie

    ells = {"genome": 12, "transit": 16}
    rows = []
    for workload in workloads:
        rng = np.random.default_rng(seed)
        ell = ells.get(workload, 12)
        if workload == "genome":
            database = genome_with_motifs(n, ell, rng)
        else:
            database = transit_trajectories(n, ell, rng)
        structure = (
            Dataset.from_database(database)
            .with_budget(epsilon)
            .with_beta(0.1)
            .with_threshold(threshold)
            .build("heavy-path", rng=rng)
        )
        compiled = CompiledTrie.from_structure(structure, cache_size=0)
        cached = CompiledTrie.from_structure(structure, cache_size=8192)

        patterns = structure.patterns()
        lengths = np.array([len(p) for p in patterns], dtype=float)
        weights = lengths / lengths.sum()
        query_rng = np.random.default_rng(seed + 1)
        hit_pool = [
            patterns[i]
            for i in query_rng.choice(len(patterns), size=4096, p=weights)
        ]
        documents = list(database)
        queries = []
        for _ in range(num_queries):
            if query_rng.random() < hit_fraction:
                queries.append(hit_pool[query_rng.integers(len(hit_pool))])
            else:
                document = documents[query_rng.integers(len(documents))]
                lo = query_rng.integers(len(document))
                hi = min(len(document), lo + 1 + query_rng.integers(6))
                queries.append(document[lo:hi])

        def best_seconds(run: Callable[[], object]) -> float:
            return min(
                _timed(run) for _ in range(timing_reps)
            )

        trie_seconds = best_seconds(lambda: [structure.query(q) for q in queries])
        single_seconds = best_seconds(lambda: [compiled.query(q) for q in queries])
        cached_seconds = best_seconds(lambda: [cached.query(q) for q in queries])
        batch_seconds = best_seconds(lambda: compiled.batch_query(queries))

        expected = [structure.query(q) for q in queries]
        parity_ok = bool(
            np.allclose(compiled.batch_query(queries), expected)
            and all(compiled.query(q) == e for q, e in zip(queries, expected))
            and all(cached.query(q) == e for q, e in zip(queries, expected))
        )
        rows.append(
            {
                "workload": workload,
                "n": n,
                "ell": ell,
                "num_nodes": compiled.num_nodes,
                "stored_patterns": compiled.num_stored_patterns,
                "num_queries": num_queries,
                "avg_query_len": float(np.mean([len(q) for q in queries])),
                "qps_trie_loop": num_queries / trie_seconds,
                "qps_compiled_single": num_queries / single_seconds,
                "qps_compiled_cached": num_queries / cached_seconds,
                "qps_compiled_batch": num_queries / batch_seconds,
                "batch_speedup": trie_seconds / batch_seconds,
                "cached_speedup": trie_seconds / cached_seconds,
                "cache_hit_rate": cached.cache_info().hit_rate,
                "parity_ok": parity_ok,
            }
        )
    return rows


def run_concurrent_serving(
    thread_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    workload: str = "genome",
    n: int = 1000,
    ell: int = 12,
    num_operations: int = 2000,
    epsilon: float = 60.0,
    threshold: float = 30.0,
    seed: int = 23,
    micro_batch: bool = True,
) -> list[dict]:
    """E23 — concurrent serving correctness and throughput.

    Builds one released structure, wraps it in a :class:`QueryService`, and
    replays one seeded mixed workload (``/query``, ``/batch``, ``/mine``,
    ``/healthz``) from 1, 2, 4 and 8 barrier-started threads.  Every replay
    must be *bit-identical* to the serial replay and must advance the
    health counters by exactly the workload totals — the concurrency
    contract of ``repro.serving`` (lock-protected caches over immutable
    array snapshots).  Throughput per thread count is recorded; on
    CPython the GIL bounds the scaling, so the headline is correctness
    under contention, not linear speedup.
    """
    from repro.serving import (
        QueryService,
        execute_operation,
        generate_workload,
        run_load_test,
    )

    rng = np.random.default_rng(seed)
    if workload == "genome":
        database = genome_with_motifs(n, ell, rng)
    else:
        database = transit_trajectories(n, ell, rng)
    structure = (
        Dataset.from_database(database)
        .with_budget(epsilon)
        .with_beta(0.1)
        .with_threshold(threshold)
        .build("heavy-path", rng=rng)
    )
    service = QueryService({workload: structure}, micro_batch=micro_batch)
    try:
        operations = generate_workload(service, num_operations, seed=seed + 1)
        # One serial replay fixes the expected answers for every thread count.
        expected = [execute_operation(service, operation) for operation in operations]
        rows = []
        for threads in thread_counts:
            result = run_load_test(
                service, operations, threads=int(threads), expected=expected
            )
            row = result.row()
            row.update(
                {
                    "workload": workload,
                    "n": n,
                    "micro_batch": micro_batch,
                    "mismatches": len(result.mismatches),
                }
            )
            rows.append(row)
        return rows
    finally:
        service.close()


def _timed(run: Callable[[], object]) -> float:
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def run_construction_benchmark(
    scenarios: Sequence[tuple[int, int, float, float]] = (
        (600, 12, 40.0, 20.0),
        (1000, 14, 50.0, 25.0),
    ),
    *,
    seed: int = 29,
    timing_reps: int = 1,
) -> list[dict]:
    """E24 — end-to-end ``build("heavy-path")`` with the array pipeline vs
    the object pipeline.

    Each scenario is ``(n, ell, epsilon, threshold)`` on the genome
    workload.  Both pipelines run from the same seeded rng, so beyond the
    timing the rows carry the real acceptance contract: the released
    structures must be **bit-identical** — same ``content_digest()``, same
    stored patterns, same report.  The headline
    (``benchmarks/bench_construction.py``) is a >= 5x end-to-end speedup on
    every scenario whose candidate trie exceeds 10k nodes; per-stage
    timings of the array build are reported so BENCH_construction.json can
    track where the remaining time goes.  ``timing_reps`` takes the best of
    that many builds per backend (same seeded rng each rep, so every rep
    produces the same structure) — the CI smoke uses 3 so a one-off
    scheduler stall on a shared runner cannot fail the speedup gate.
    """
    from dataclasses import replace

    rows = []
    for n, ell, epsilon, threshold in scenarios:
        database = genome_with_motifs(n, ell, np.random.default_rng(seed))
        params = ConstructionParams.pure(epsilon, beta=0.1, threshold=threshold)
        build_rng = seed + 1

        def timed_build(backend: str):
            best, structure = float("inf"), None
            for _ in range(max(1, timing_reps)):
                # Every rep is a cold build: drop the sorted-window cache the
                # array pipeline pins on the database, or reps 2+ would
                # measure warm-cache times the object pipeline never gets.
                database.__dict__.pop("_sortjoin_counter", None)
                started = time.perf_counter()
                structure = build_private_counting_structure(
                    database,
                    replace(params, build_backend=backend),
                    rng=np.random.default_rng(build_rng),
                )
                best = min(best, time.perf_counter() - started)
            return structure, best

        array_structure, array_seconds = timed_build("array")
        object_structure, object_seconds = timed_build("object")

        stages = (
            array_structure.profile.stages() if array_structure.profile else {}
        )
        rows.append(
            {
                "n": n,
                "ell": ell,
                "epsilon": epsilon,
                "candidate_trie_nodes": array_structure.report[
                    "trie_nodes_before_pruning"
                ],
                "stored_nodes": array_structure.report["trie_nodes_after_pruning"],
                "object_seconds": object_seconds,
                "array_seconds": array_seconds,
                "speedup": object_seconds / array_seconds
                if array_seconds
                else float("inf"),
                "digests_equal": array_structure.content_digest()
                == object_structure.content_digest(),
                "items_equal": dict(array_structure.items())
                == dict(object_structure.items()),
                "array_candidates_seconds": stages.get("candidates", 0.0),
                "array_annotate_seconds": stages.get("annotate", 0.0),
                "array_noise_seconds": stages.get("noise", 0.0),
            }
        )
    return rows


def _synthetic_release(target_nodes: int, *, seed: int = 0):
    """A serving-sized :class:`CompiledTrie` built directly as arrays.

    A *complete* trie of depth 4 over an alphabet of ``a ≈ target^(1/4)``
    symbols, every node storing a noisy-looking count.  In BFS order the
    children of consecutive nodes occupy consecutive index ranges, so
    ``edge_targets`` is simply ``1..N-1`` and ``edge_keys`` comes out
    globally sorted by construction — no DP construction run is needed to
    get an 86k- or 810k-node release, which is what lets E26 measure
    cold-start at sizes the laptop-scale builder would take minutes to
    produce.
    """
    from repro.core.private_trie import StructureMetadata
    from repro.serving.compiled import CompiledTrie

    depth = 4
    alphabet = max(2, round(target_nodes ** (1.0 / depth)))
    level_sizes = [alphabet**k for k in range(depth + 1)]
    starts = np.concatenate(([0], np.cumsum(level_sizes))).astype(np.int64)
    num_nodes = int(starts[-1])
    vocab_size = alphabet + 1

    rng = np.random.default_rng(seed)
    counts = np.abs(rng.normal(1000.0, 100.0, size=num_nodes)).round(3)
    depths = np.zeros(num_nodes, dtype=np.int64)
    parents = np.full(num_nodes, -1, dtype=np.int64)
    parent_codes = np.zeros(num_nodes, dtype=np.int64)
    child_start = np.full(num_nodes, num_nodes - 1, dtype=np.int64)
    child_end = np.full(num_nodes, num_nodes - 1, dtype=np.int64)
    for level in range(1, depth + 1):
        lo, hi = int(starts[level]), int(starts[level + 1])
        offsets = np.arange(hi - lo, dtype=np.int64)
        depths[lo:hi] = level
        parents[lo:hi] = starts[level - 1] + offsets // alphabet
        parent_codes[lo:hi] = offsets % alphabet + 1
    for level in range(depth):
        lo, hi = int(starts[level]), int(starts[level + 1])
        offsets = np.arange(hi - lo, dtype=np.int64)
        # Node i's first child is node starts[level+1] + (i - lo) * a, and
        # edge e targets node e + 1, so the edge slice starts one below.
        child_start[lo:hi] = starts[level + 1] + offsets * alphabet - 1
        child_end[lo:hi] = child_start[lo:hi] + alphabet
    edge_targets = np.arange(1, num_nodes, dtype=np.int64)
    edge_keys = parents[1:] * vocab_size + parent_codes[1:]
    edge_labels = parent_codes[1:].copy()

    # Printable, JSON-friendly single-codepoint alphabet (starts at 'A').
    vocab = {chr(0x41 + i): i + 1 for i in range(alphabet)}
    metadata = StructureMetadata(
        epsilon=1.0,
        delta=0.0,
        beta=0.1,
        delta_cap=1,
        max_length=depth,
        num_documents=num_nodes,
        alphabet_size=alphabet,
        error_bound=1.0,
        threshold=0.0,
        construction="synthetic-complete-trie",
    )
    return CompiledTrie(
        counts=counts,
        depths=depths,
        parents=parents,
        parent_codes=parent_codes,
        child_start=child_start,
        child_end=child_end,
        edge_keys=edge_keys,
        edge_labels=edge_labels,
        edge_targets=edge_targets,
        vocab=vocab,
        metadata=metadata,
        report={"synthetic": True, "depth": depth, "alphabet": alphabet},
        cache_size=0,
    )


#: Child process of the E26 RSS measurement: loads one release, touches
#: every node page, then reports its resident-set breakdown from /proc —
#: the parent coordinates two concurrent mmap children so the kernel
#: accounts the shared pages as Shared_*, proving the page-cache sharing.
_RSS_CHILD = r"""
import json, sys

store_root, name, version, mode = sys.argv[1], sys.argv[2], int(sys.argv[3]), sys.argv[4]
from repro.serving import ReleaseStore

store = ReleaseStore(store_root)
if mode == "json":
    compiled = store.load(name, version).compiled(cache_size=0)
else:
    compiled = store.load_compiled(
        name, version, mmap=(mode == "mmap"), cache_size=0
    )
# Touch every node page so residency reflects real serving, not an
# untouched lazy mapping.
checksum = float(sum(float(array.sum()) for array in compiled.arrays().values()))
print("READY", flush=True)
sys.stdin.readline()


def mapping_rss(pattern):
    rss = private = shared = 0
    found = False
    try:
        with open("/proc/self/smaps") as handle:
            inside = False
            for line in handle:
                first = line.split(None, 1)[0]
                if first.endswith(":"):
                    if inside and first in (
                        "Rss:",
                        "Private_Clean:",
                        "Private_Dirty:",
                        "Shared_Clean:",
                        "Shared_Dirty:",
                    ):
                        value = int(line.split()[1])
                        if first == "Rss:":
                            rss += value
                        elif first.startswith("Private"):
                            private += value
                        else:
                            shared += value
                else:  # a new mapping's address-range header line
                    inside = pattern in line
                    found = found or inside
    except OSError:
        return None
    if not found:
        return None
    return {"rss_kb": rss, "private_kb": private, "shared_kb": shared}


def vmrss_kb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


print(
    json.dumps(
        {"vmrss_kb": vmrss_kb(), "mapping": mapping_rss(".dpsb"), "checksum": checksum}
    ),
    flush=True,
)
"""


def _measure_release_rss(
    store_root, name: str, loads: Sequence[tuple[int, str]]
) -> "list[dict] | None":
    """Spawn one child per ``(version, mode)``, concurrently, and collect
    their RSS reports.

    All children hold their release resident at the same time before any of
    them reads ``/proc`` (READY/go handshake), so pages mapped by several
    children are accounted as shared, not private.  Returns ``None`` when
    the measurement is impossible (no ``/proc``, spawn failure) — RSS is
    reported, never load-bearing for the benchmark's pass/fail.
    """
    import json
    import os
    import subprocess
    import sys as _sys
    from pathlib import Path

    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    children = []
    try:
        for version, mode in loads:
            children.append(
                subprocess.Popen(
                    [
                        _sys.executable,
                        "-c",
                        _RSS_CHILD,
                        str(store_root),
                        name,
                        str(version),
                        mode,
                    ],
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    text=True,
                    env=env,
                )
            )
        for child in children:
            if child.stdout.readline().strip() != "READY":
                return None
        for child in children:
            child.stdin.write("go\n")
            child.stdin.flush()
        reports = [json.loads(child.stdout.readline()) for child in children]
    except (OSError, ValueError):
        return None
    finally:
        for child in children:
            try:
                child.stdin.close()
                child.wait(timeout=30)
            except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
                child.kill()
    return reports


def run_release_format_benchmark(
    sizes: Sequence[int] = (86_000, 810_000),
    *,
    seed: int = 31,
    timing_reps: int = 3,
    num_probes: int = 512,
    measure_rss: bool = True,
) -> list[dict]:
    """E26 — release payload formats: cold-start latency and per-process RSS
    for JSON vs binary vs binary+mmap.

    For each target node count a synthetic complete trie is released twice
    into a scratch store — once per format — and three cold starts are
    timed, each as *time to first batch* (load + one ``batch_query``, the
    moment a server can actually answer): parsing the JSON payload into an
    object trie and compiling it, reading the binary payload fully, and
    mapping the binary payload (O(header) until the batch faults pages in).
    The rows also carry the tentpole's correctness contract: the canonical
    content digest is equal across formats and directions, ``query_many``
    answers are bit-identical across all three loads, and ``migrate()``
    converts a JSON version in place with the digest proven equal before
    the old payload is removed.  When ``/proc`` is available, concurrent
    child processes report the resident-set breakdown of the mapped blob —
    the second mmap process's *private* (unique) pages are the headline:
    near zero, because N processes share one page-cache copy.
    """
    import tempfile
    from pathlib import Path

    from repro.serving import ReleaseStore

    rows = []
    for target in sizes:
        compiled = _synthetic_release(target, seed=seed)
        digest = compiled.content_digest()
        probe_rng = np.random.default_rng(seed + 1)
        chars = sorted(compiled._vocab)
        probes = [
            "".join(
                chars[probe_rng.integers(len(chars))]
                for _ in range(probe_rng.integers(1, 6))  # depth 5 misses too
            )
            for _ in range(num_probes)
        ]
        expected = compiled.query_many(probes)

        with tempfile.TemporaryDirectory(prefix="e26-") as scratch:
            store = ReleaseStore(Path(scratch) / "store")
            json_record = store.save("e26", compiled, format="json")
            binary_record = store.save("e26", compiled, format="binary")
            json_bytes = Path(json_record.path).stat().st_size
            binary_bytes = Path(binary_record.path).stat().st_size

            def first_batch_seconds(loader) -> tuple[float, float]:
                """Best-of-reps (pure load, load + first batch) seconds."""
                best_load = best_total = float("inf")
                for _ in range(max(1, timing_reps)):
                    started = time.perf_counter()
                    loaded = loader()
                    load_seconds = time.perf_counter() - started
                    answers = loaded.batch_query(probes)
                    total_seconds = time.perf_counter() - started
                    if not np.array_equal(answers, expected):
                        raise AssertionError("release format query mismatch")
                    best_load = min(best_load, load_seconds)
                    best_total = min(best_total, total_seconds)
                return best_load, best_total

            json_load, json_total = first_batch_seconds(
                lambda: store.load("e26", json_record.version).compiled(
                    cache_size=0
                )
            )
            binary_load, binary_total = first_batch_seconds(
                lambda: store.load_compiled(
                    "e26", binary_record.version, mmap=False, cache_size=0
                )
            )
            mmap_load, mmap_total = first_batch_seconds(
                lambda: store.load_compiled(
                    "e26", binary_record.version, mmap=True, cache_size=0
                )
            )

            # Digest equality in both directions: the records agree with
            # the in-memory digest, the binary header agrees with the
            # index, and (at smoke scale, where the object walk is cheap)
            # a binary payload reconstructed as an object trie re-digests
            # to the same value.
            digests_equal = (
                json_record.digest == digest and binary_record.digest == digest
            )
            if target <= 200_000:
                digests_equal = digests_equal and (
                    store.load("e26", binary_record.version).content_digest()
                    == digest
                )

            # Migration: the JSON version converted in place, digest
            # verified before the JSON payload is removed.
            migrated = store.migrate("e26", json_record.version)
            migrate_ok = (
                len(migrated) == 1
                and migrated[0].format == "binary"
                and migrated[0].digest == digest
                and not Path(json_record.path).exists()
                and np.array_equal(
                    store.load_compiled(
                        "e26", json_record.version, cache_size=0
                    ).batch_query(probes),
                    expected,
                )
            )

            rss_reports = None
            if measure_rss:
                rss_reports = _measure_release_rss(
                    store.root,
                    "e26",
                    [
                        (binary_record.version, "mmap"),
                        (binary_record.version, "mmap"),
                        (binary_record.version, "binary"),
                    ],
                )

            row = {
                "num_nodes": compiled.num_nodes,
                "alphabet": compiled.metadata.alphabet_size,
                "json_bytes": int(json_bytes),
                "binary_bytes": int(binary_bytes),
                "json_load_seconds": json_load,
                "json_first_batch_seconds": json_total,
                "binary_load_seconds": binary_load,
                "binary_first_batch_seconds": binary_total,
                "mmap_load_seconds": mmap_load,
                "mmap_first_batch_seconds": mmap_total,
                "cold_start_speedup_mmap_vs_json": json_total / mmap_total
                if mmap_total
                else float("inf"),
                "load_speedup_mmap_vs_json": json_load / mmap_load
                if mmap_load
                else float("inf"),
                "digests_equal": bool(digests_equal),
                "migrate_ok": bool(migrate_ok),
                "parity_ok": True,  # first_batch_seconds raises on mismatch
            }
            if rss_reports is not None and len(rss_reports) == 3:
                first_map = rss_reports[0].get("mapping") or {}
                second_map = rss_reports[1].get("mapping") or {}
                row.update(
                    {
                        "mmap_process1_rss_kb": rss_reports[0].get("vmrss_kb"),
                        "mmap_process2_rss_kb": rss_reports[1].get("vmrss_kb"),
                        "inmem_process_rss_kb": rss_reports[2].get("vmrss_kb"),
                        "mmap_process1_private_kb": first_map.get("private_kb"),
                        "mmap_process2_private_kb": second_map.get("private_kb"),
                        "mmap_process2_shared_kb": second_map.get("shared_kb"),
                        "second_process_unique_kb": second_map.get("private_kb"),
                    }
                )
            else:
                row["second_process_unique_kb"] = None
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# E27 — sharded serving tier: throughput scaling over worker processes
# ----------------------------------------------------------------------
def _scale_client_main(url, body, expected, rounds, go, conn) -> None:
    """One spawned batch-hammer client of the E27 measurement.

    Sends the same uniform-q-gram ``/batch`` request ``rounds`` times over
    one keep-alive connection, comparing every response float-for-float
    against ``expected`` (the serial in-process answers).  Reports
    ``(rounds_done, identical, error)`` back over ``conn``; the parent owns
    the clock.
    """
    import http.client
    import json as _json
    import socket
    from urllib.parse import urlparse

    parsed = urlparse(url)
    try:
        connection = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=300
        )
        connection.connect()
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError as error:
        conn.send(("error", 0, False, repr(error)))
        return
    conn.send("ready")
    go.wait()
    identical = True
    done = 0
    try:
        for _ in range(rounds):
            connection.request(
                "POST", "/batch", body, {"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = response.read()
            if response.status != 200:
                raise RuntimeError(f"HTTP {response.status}: {payload[:200]!r}")
            counts = _json.loads(payload.decode("utf-8"))["counts"]
            if counts != expected:
                identical = False
            done += 1
        conn.send(("done", done, identical, None))
    except Exception as error:  # noqa: BLE001 - reported to the parent
        conn.send(("error", done, identical, repr(error)))
    finally:
        connection.close()
        conn.close()


def _mapping_private_kb(pid: int, needle: str = ".dpsb") -> "int | None":
    """Private (unique) resident kilobytes of a process's ``needle``
    mappings, from ``/proc/<pid>/smaps`` (``None`` off-Linux)."""
    import re

    heading = re.compile(r"^[0-9a-f]+-[0-9a-f]+\s")
    private = 0
    in_mapping = False
    found = False
    try:
        with open(f"/proc/{pid}/smaps") as handle:
            for line in handle:
                if heading.match(line):
                    in_mapping = needle in line
                    found = found or in_mapping
                elif in_mapping and line.startswith(
                    ("Private_Clean:", "Private_Dirty:")
                ):
                    private += int(line.split()[1])
    except OSError:
        return None
    return private if found else None


def _drive_scale_clients(
    url: str,
    body: bytes,
    expected: "list[float]",
    *,
    clients: int,
    rounds: int,
    mid_run=None,
) -> dict:
    """Hammer ``url`` from ``clients`` spawned processes; return totals.

    ``mid_run`` (optional) is called in the parent roughly mid-measurement
    — the hook the crash drill uses to ``kill -9`` a worker while batches
    are in flight.
    """
    import multiprocessing

    spawn = multiprocessing.get_context("spawn")
    go = spawn.Event()
    members = []
    try:
        for index in range(clients):
            parent_conn, child_conn = spawn.Pipe(duplex=False)
            process = spawn.Process(
                target=_scale_client_main,
                args=(url, body, expected, rounds, go, child_conn),
                name=f"e27-client-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            members.append((process, parent_conn))
        for index, (_, parent_conn) in enumerate(members):
            if not parent_conn.poll(120):
                raise RuntimeError(f"E27 client {index} never became ready")
            message = parent_conn.recv()
            if message != "ready":
                raise RuntimeError(f"E27 client {index} failed: {message[3]}")
        go.set()
        started = time.perf_counter()
        if mid_run is not None:
            mid_run()
        reports = []
        for index, (_, parent_conn) in enumerate(members):
            if not parent_conn.poll(600):
                raise RuntimeError(f"E27 client {index} never finished")
            reports.append(parent_conn.recv())
        seconds = time.perf_counter() - started
    finally:
        for process, parent_conn in members:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung client
                process.terminate()
                process.join(2)
            try:
                parent_conn.close()
            except OSError:  # pragma: no cover
                pass
    errors = [report[3] for report in reports if report[0] == "error"]
    return {
        "seconds": seconds,
        "rounds_done": sum(report[1] for report in reports),
        "bit_identical": all(report[2] for report in reports) and not errors,
        "errors": errors,
    }


def run_serving_scale(
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    target_nodes: int = 86_000,
    seed: int = 37,
    batch_size: int = 1024,
    clients: int = 4,
    rounds: int = 16,
    crash_drill: bool = True,
    measure_rss: bool = True,
) -> list[dict]:
    """E27 — the sharded serving tier against the single-process server.

    A synthetic release is published once into a scratch store; uniform
    q-gram ``/batch`` traffic (every pattern the same length, the tier's
    split-eligible case) is then driven over HTTP by spawned client
    processes — first at the single-process server (the baseline row), then
    at clusters of 1/2/4/... workers.  Each row records aggregate pattern
    throughput, the speedup over the baseline, and two correctness gates
    measured, not assumed:

    * **bit identity** — every client compares every response
      float-for-float against the serial in-process answers, and one raw
      response body from the router is compared byte-for-byte against the
      single-process server's for the identical request;
    * **memory sharing** — each worker's *private* resident kilobytes of
      the mapped ``.dpsb`` payload, read from ``/proc/<pid>/smaps`` after
      the run: second-and-later workers should add ~0 private pages over
      the one page-cache copy.

    The largest multi-worker cluster additionally runs a **crash drill**:
    a worker is ``kill -9``'d while batches are in flight, and the run
    still must return complete, bit-identical results (router retry) with
    the worker respawned by the supervisor afterwards.

    Speedup *numbers* are environment-honest: the row records
    ``available_cpus``, and the benchmark gates its speedup floors on it —
    a single-core container cannot show multi-core scaling, but it can
    still prove bit identity, crash recovery and page sharing.
    """
    import http.client
    import json
    import os
    import tempfile
    import threading
    from pathlib import Path
    from urllib.parse import urlparse

    from repro.serving import Cluster, QueryService, ReleaseStore, create_server

    compiled = _synthetic_release(target_nodes, seed=seed)
    pattern_rng = np.random.default_rng(seed + 1)
    chars = sorted(compiled._vocab)
    patterns = [
        "".join(chars[pattern_rng.integers(len(chars))] for _ in range(4))
        for _ in range(batch_size)
    ]
    expected = [float(count) for count in compiled.batch_query(patterns)]
    body = json.dumps({"patterns": patterns}).encode("utf-8")
    try:
        available_cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        available_cpus = os.cpu_count() or 1

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="e27-") as scratch:
        store = ReleaseStore(Path(scratch) / "store")
        store.save("e27", compiled, format="binary")

        # ---------------- single-process baseline --------------------
        service = QueryService.from_store(store, micro_batch=False)
        server = create_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        single_url = f"http://127.0.0.1:{server.server_address[1]}"

        def raw_batch(url: str) -> bytes:
            parsed = urlparse(url)
            connection = http.client.HTTPConnection(
                parsed.hostname, parsed.port, timeout=300
            )
            try:
                connection.request(
                    "POST", "/batch", body, {"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                payload = response.read()
                if response.status != 200:
                    raise AssertionError(f"raw batch failed: HTTP {response.status}")
                return payload
            finally:
                connection.close()

        single_reference = raw_batch(single_url)
        outcome = _drive_scale_clients(
            single_url, body, expected, clients=clients, rounds=rounds
        )
        server.shutdown()
        server.server_close()
        service.close()
        patterns_total = outcome["rounds_done"] * batch_size
        single_throughput = (
            patterns_total / outcome["seconds"] if outcome["seconds"] else 0.0
        )
        rows.append(
            {
                "mode": "single-process",
                "workers": 0,
                "clients": clients,
                "batch_size": batch_size,
                "rounds": outcome["rounds_done"],
                "patterns_served": patterns_total,
                "seconds": outcome["seconds"],
                "patterns_per_second": single_throughput,
                "speedup_vs_single": 1.0,
                "bit_identical": outcome["bit_identical"],
                "response_bytes_identical": True,
                "errors": len(outcome["errors"]),
                "available_cpus": available_cpus,
            }
        )

        # ---------------- cluster rows -------------------------------
        largest = max(
            (count for count in worker_counts if count >= 2), default=None
        )
        for workers in worker_counts:
            with Cluster(
                store, workers=workers, split_min_patterns=min(512, batch_size)
            ) as cluster:
                bytes_identical = raw_batch(cluster.url) == single_reference
                outcome = _drive_scale_clients(
                    cluster.url, body, expected, clients=clients, rounds=rounds
                )
                worker_private_kb = None
                if measure_rss:
                    measured = [
                        _mapping_private_kb(worker.pid)
                        for worker in cluster.workers()
                    ]
                    if all(value is not None for value in measured):
                        worker_private_kb = measured
                drill_ok = None
                drill_respawns = None
                if crash_drill and workers == largest:
                    victim = cluster.workers()[0]

                    def kill_victim(handle=victim):
                        time.sleep(0.1)  # let batches get in flight
                        handle.kill()

                    drill = _drive_scale_clients(
                        cluster.url,
                        body,
                        expected,
                        clients=clients,
                        rounds=max(4, rounds // 2),
                        mid_run=kill_victim,
                    )
                    deadline = time.monotonic() + 30
                    while (
                        len(cluster.table.live()) < workers
                        and time.monotonic() < deadline
                    ):
                        time.sleep(0.05)
                    drill_ok = (
                        drill["bit_identical"]
                        and not drill["errors"]
                        and cluster.respawns >= 1
                        and len(cluster.table.live()) == workers
                    )
                    drill_respawns = cluster.respawns
            patterns_total = outcome["rounds_done"] * batch_size
            throughput = (
                patterns_total / outcome["seconds"] if outcome["seconds"] else 0.0
            )
            row = {
                "mode": "cluster",
                "workers": workers,
                "clients": clients,
                "batch_size": batch_size,
                "rounds": outcome["rounds_done"],
                "patterns_served": patterns_total,
                "seconds": outcome["seconds"],
                "patterns_per_second": throughput,
                "speedup_vs_single": (
                    throughput / single_throughput if single_throughput else 0.0
                ),
                "bit_identical": outcome["bit_identical"],
                "response_bytes_identical": bool(bytes_identical),
                "errors": len(outcome["errors"]),
                "available_cpus": available_cpus,
            }
            if worker_private_kb is not None:
                row["worker_private_kb"] = worker_private_kb
                row["max_extra_worker_private_kb"] = (
                    max(worker_private_kb[1:]) if len(worker_private_kb) > 1 else 0
                )
            if drill_ok is not None:
                row["crash_drill_ok"] = bool(drill_ok)
                row["crash_drill_respawns"] = int(drill_respawns)
                row["crash_drill_errors"] = len(drill["errors"])
            rows.append(row)
    return rows

def run_continual_release(
    epochs: int = 8,
    *,
    docs_per_epoch: int = 12,
    ell: int = 10,
    epsilon: float = 8.0,
    seed: int = 11,
    workers: int = 2,
    reload_drill: bool = True,
    clients: int = 3,
) -> list[dict]:
    """E28 — the continual-release pipeline end to end.

    A genome workload is split into ``epochs`` arrival batches on an
    append-only :class:`~repro.api.CorpusStream`; an
    :class:`~repro.serving.EpochScheduler` releases one store version per
    epoch under the dyadic-tree budget schedule.  Each epoch row checks
    three properties *measured, not assumed*:

    * **O(log T) spend** — the ledger's cumulative epsilon after epoch ``t``
      equals ``bit_length(t) * epoch_epsilon`` (the tree bound), strictly
      below the ``t * epoch_epsilon`` of naive sequential composition from
      ``t = 3`` on;
    * **digest-stable replay** — a second scheduler run over the same
      stream with the same seed into a fresh store reproduces every
      epoch's release digest exactly;
    * **hot reload** — with a ``workers``-process cluster serving the
      store, every release from epoch 2 on triggers
      :meth:`Cluster.reload` while client threads hammer the tier
      continuously: the run must finish with *zero* client-visible
      failures and the cluster serving the final epoch's version.
    """
    import tempfile
    import threading
    from pathlib import Path

    from repro.api import CorpusStream
    from repro.serving import (
        BudgetLedger,
        Cluster,
        EpochScheduler,
        ReleaseStore,
        ServingClient,
    )

    rng = np.random.default_rng(seed)
    database = genome_with_motifs(epochs * docs_per_epoch, ell, rng)
    documents = list(database)
    stream = CorpusStream(name="continual")
    for index in range(epochs):
        stream.append_epoch(
            documents[index * docs_per_epoch : (index + 1) * docs_per_epoch]
        )
    params = ConstructionParams(budget=PrivacyBudget(epsilon), beta=0.1)
    levels = epochs.bit_length()
    cap = PrivacyBudget((levels + 1) * epsilon, 1e-6)

    def make_scheduler(scratch: Path, cluster=None) -> EpochScheduler:
        store = ReleaseStore(scratch / "store")
        ledger = BudgetLedger(cap, path=scratch / "ledger.json")
        return EpochScheduler(
            stream, store, ledger, params=params, seed=seed, cluster=cluster
        )

    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="e28-") as scratch_name:
        scratch = Path(scratch_name)
        # ---------------- replay reference (no serving) ---------------
        reference = make_scheduler(scratch / "replay")
        replay_digests = [release.digest for release in reference.run_pending()]

        # ---------------- the real pass, with hot reload --------------
        scheduler = make_scheduler(scratch / "live")
        first = scheduler.run_epoch()  # the cluster needs one version to boot
        client_errors: list[str] = []
        queries_done = [0]
        reloads = 0
        final_version_serving = None
        releases = [first]
        if reload_drill:
            with Cluster(scheduler.store, workers=workers) as cluster:
                scheduler.cluster = cluster
                stop = threading.Event()

                def hammer() -> None:
                    client = ServingClient(cluster.url)
                    while not stop.is_set():
                        try:
                            client.query("ACGT", release="continual")
                            queries_done[0] += 1
                        except Exception as error:  # client-visible failure
                            client_errors.append(repr(error))

                threads = [
                    threading.Thread(target=hammer, daemon=True)
                    for _ in range(clients)
                ]
                for thread in threads:
                    thread.start()
                try:
                    releases.extend(scheduler.run_pending())
                finally:
                    stop.set()
                    for thread in threads:
                        thread.join(timeout=30)
                reloads = sum(1 for release in releases if release.reloaded)
                final_version_serving = cluster.table.versions.get("continual")
        else:
            releases.extend(scheduler.run_pending())

        ledger_epochs = scheduler.ledger.epoch_entries("continual")
        for release in releases:
            tree_epsilon, _ = scheduler.continual.spent_through(release.epoch)
            rows.append(
                {
                    "epoch": release.epoch,
                    "version": release.version,
                    "marginal_epsilon": release.epsilon,
                    "spent_epsilon": release.spent_epsilon,
                    "tree_bound_epsilon": tree_epsilon,
                    "bound_ok": bool(
                        abs(release.spent_epsilon - tree_epsilon) < 1e-9
                    ),
                    "naive_epsilon": release.epoch * epsilon,
                    "below_naive": bool(
                        release.epoch < 3
                        or release.spent_epsilon < release.epoch * epsilon
                    ),
                    "digest12": release.digest[:12],
                    "digest_stable": bool(
                        release.digest == replay_digests[release.epoch - 1]
                    ),
                    "ledger_audited": bool(
                        any(
                            entry["epoch"] == release.epoch
                            for entry in ledger_epochs
                        )
                    ),
                    "num_patterns": release.num_patterns,
                    "reloaded": bool(release.reloaded),
                }
            )
        if reload_drill:
            rows.append(
                {
                    "mode": "reload-drill",
                    "workers": workers,
                    "clients": clients,
                    "reloads": reloads,
                    "queries_served": queries_done[0],
                    "client_errors": len(client_errors),
                    "zero_failures": not client_errors,
                    "final_version_serving": final_version_serving,
                    "final_version_expected": releases[-1].version,
                    "serving_latest": bool(
                        final_version_serving == releases[-1].version
                    ),
                }
            )
    return rows


# ----------------------------------------------------------------------
# E29: chaos drill — seeded fault injection against the resilient tier.
# ----------------------------------------------------------------------
def run_chaos_drill(
    workers: int = 4,
    *,
    seed: int = 29,
    target_nodes: int = 40_000,
    clients: int = 4,
    requests_per_client: int = 40,
    batch_size: int = 256,
    request_deadline: float = 10.0,
    worker_every: int = 5,
    relay_every: int = 9,
    overhead_repeats: int = 40,
) -> list[dict]:
    """E29 — the resilience layer under seeded, replayable fault injection.

    A synthetic release is served by a ``workers``-worker cluster whose
    failpoints are armed from one seed: every ``worker_every``-th handled
    worker request raises an injected 500 (``worker.handle``, armed via the
    inherited environment in every spawned worker) and every
    ``relay_every``-th router→worker round-trip raises an injected
    connection reset (``router.relay``, armed in the router process).
    Resilient :class:`~repro.serving.ServingClient`\\ s then hammer
    ``/query`` and ``/batch`` under a per-request deadline while one worker
    is ``kill -9``'d mid-run.  The drill row records three gates measured,
    not assumed:

    * **zero client-visible errors** — every injected fault and the crash
      are absorbed by retries, breakers and respawn; every answer is
      bit-identical to the in-process reference;
    * **bounded tail latency** — client p99 stays under the per-request
      deadline (nothing hung on a dead worker);
    * **replay-identical injection** — the injection logs written by the
      router and by every worker verify exactly against the pure
      recomputation of the seeded schedule
      (:func:`repro.faults.verify_log`).

    The overhead row prices the framework when *disarmed*: min-of-N
    ``/batch`` round-trips against a single-process server with fault
    injection fully off versus armed at an irrelevant site (so every
    serving-path failpoint runs its not-armed fast path) — the ratio must
    stay within noise of 1.
    """
    import json
    import os
    import tempfile
    import threading
    from pathlib import Path

    from repro import faults
    from repro.serving import (
        Cluster,
        QueryService,
        ReleaseStore,
        ServingClient,
        create_server,
    )

    compiled = _synthetic_release(target_nodes, seed=seed)
    pattern_rng = np.random.default_rng(seed + 1)
    chars = sorted(compiled._vocab)
    patterns = [
        "".join(chars[pattern_rng.integers(len(chars))] for _ in range(4))
        for _ in range(batch_size)
    ]
    expected_batch = [float(count) for count in compiled.batch_query(patterns)]
    expected_single = {
        pattern: expected_batch[index] for index, pattern in enumerate(patterns)
    }

    worker_spec = faults.FaultSpec(
        site="worker.handle", action="raise", exc="fault", every=worker_every
    )
    relay_spec = faults.FaultSpec(
        site="router.relay", action="raise", exc="connection", every=relay_every
    )

    rows: list[dict] = []
    env_keys = (faults.ENV_SPECS, faults.ENV_SEED, faults.ENV_SCOPE, faults.ENV_LOG)
    saved_env = {key: os.environ.get(key) for key in env_keys}
    with tempfile.TemporaryDirectory(prefix="e29-") as scratch:
        store = ReleaseStore(Path(scratch) / "store")
        store.save("e29", compiled, format="binary")
        worker_log = Path(scratch) / "faults-workers.jsonl"

        # Workers arm from the environment they inherit at spawn; the
        # router process arms directly (its log stays in memory).
        os.environ.update(
            faults.env_for(
                [worker_spec], seed=seed, scope="worker", log_path=worker_log
            )
        )
        try:
            faults.arm([relay_spec], seed=seed, scope="router")
            with Cluster(store, workers=workers) as cluster:
                url = cluster.url
                latencies: list[float] = []
                client_errors: list[str] = []
                mismatches = [0]
                retries_total = [0]
                lock = threading.Lock()

                def hammer(client_index: int) -> None:
                    client = ServingClient(
                        url,
                        timeout=request_deadline,
                        retries=8,
                        seed=seed * 1000 + client_index,
                    )
                    rng = np.random.default_rng(seed + 100 + client_index)
                    local_latencies = []
                    for step in range(requests_per_client):
                        started = time.perf_counter()
                        try:
                            if step % 4 == 0:
                                lo = int(rng.integers(0, batch_size - 16))
                                subset = patterns[lo : lo + 16]
                                counts = client.batch(subset)
                                ok = counts == [
                                    expected_single[p] for p in subset
                                ]
                            else:
                                pattern = patterns[int(rng.integers(batch_size))]
                                ok = client.query(pattern) == expected_single[
                                    pattern
                                ]
                            if not ok:
                                with lock:
                                    mismatches[0] += 1
                        except Exception as error:  # client-visible failure
                            with lock:
                                client_errors.append(repr(error))
                        local_latencies.append(time.perf_counter() - started)
                    with lock:
                        latencies.extend(local_latencies)
                        retries_total[0] += client.num_retries

                threads = [
                    threading.Thread(target=hammer, args=(index,), daemon=True)
                    for index in range(clients)
                ]
                for thread in threads:
                    thread.start()
                time.sleep(0.2)  # let traffic get in flight, then crash one
                cluster.workers()[0].kill()
                for thread in threads:
                    thread.join(timeout=120)
                deadline = time.monotonic() + 30
                while (
                    len(cluster.table.live()) < workers
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.05)
                health = cluster.router.health()
                respawns = int(cluster.respawns)
                live_after = len(cluster.table.live())
            router_entries = faults.injection_log()
        finally:
            faults.disarm_all()
            faults.clear_log()
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value

        worker_entries = faults.read_log(worker_log)
        problems = faults.verify_log(
            router_entries + worker_entries,
            [worker_spec, relay_spec],
            seed=seed,
        )
        ordered = sorted(latencies)
        p50 = ordered[len(ordered) // 2] if ordered else 0.0
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] if ordered else 0.0
        rows.append(
            {
                "mode": "chaos-drill",
                "workers": workers,
                "clients": clients,
                "requests_total": clients * requests_per_client,
                "client_errors": len(client_errors),
                "mismatches": mismatches[0],
                "zero_failures": not client_errors and not mismatches[0],
                "client_retries": retries_total[0],
                "router_retries": int(health["retries"]),
                "sheds": int(health["sheds"]),
                "deadline_exceeded": int(health["deadline_exceeded"]),
                "respawns": respawns,
                "workers_live_after": live_after,
                "injected_router": len(router_entries),
                "injected_worker": len(worker_entries),
                "replay_identical": not problems,
                "replay_problems": problems[:3],
                "p50_ms": p50 * 1e3,
                "p99_ms": p99 * 1e3,
                "deadline_s": request_deadline,
                "p99_under_deadline": bool(p99 < request_deadline),
            }
        )

        # ---------------- disarmed-overhead row ----------------------
        body = json.dumps({"patterns": patterns}).encode("utf-8")
        service = QueryService.from_store(store, micro_batch=False)
        server = create_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        port = server.server_address[1]

        def min_batch_seconds() -> float:
            import http.client as http_client

            connection = http_client.HTTPConnection("127.0.0.1", port, timeout=60)
            try:
                best = float("inf")
                for _ in range(overhead_repeats):
                    started = time.perf_counter()
                    connection.request(
                        "POST", "/batch", body, {"Content-Type": "application/json"}
                    )
                    response = connection.getresponse()
                    response.read()
                    if response.status != 200:
                        raise AssertionError(
                            f"overhead batch failed: HTTP {response.status}"
                        )
                    best = min(best, time.perf_counter() - started)
                return best
            finally:
                connection.close()

        try:
            faults.disarm_all()
            disarmed = min_batch_seconds()
            # Armed at a site the serving path never hits: every serving
            # failpoint now runs its armed-elsewhere fast path.
            faults.arm(
                [{"site": "fsio.write", "action": "raise"}],
                seed=seed,
                scope="overhead",
            )
            armed_elsewhere = min_batch_seconds()
        finally:
            faults.disarm_all()
            faults.clear_log()
            server.shutdown()
            server.server_close()
            service.close()
        rows.append(
            {
                "mode": "disarmed-overhead",
                "batch_size": batch_size,
                "repeats": overhead_repeats,
                "disarmed_ms": disarmed * 1e3,
                "armed_elsewhere_ms": armed_elsewhere * 1e3,
                "overhead_ratio": (
                    armed_elsewhere / disarmed if disarmed else 0.0
                ),
            }
        )
    return rows
