"""Analysis utilities: metrics, experiment runners and reporting."""

from repro.analysis.metrics import (
    ErrorSummary,
    MiningQuality,
    error_summary,
    max_error_over_all_substrings,
    mining_quality,
    query_errors,
)
from repro.analysis.reporting import format_table, print_experiment, save_results

__all__ = [
    "ErrorSummary",
    "MiningQuality",
    "error_summary",
    "max_error_over_all_substrings",
    "mining_quality",
    "query_errors",
    "format_table",
    "print_experiment",
    "save_results",
]
