"""Plain-text reporting of experiment results.

The benchmark harness prints the same kind of rows/series a paper table or
figure would contain; this module renders them as aligned text tables and
records them to the ``results/`` directory so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["format_table", "format_value", "print_experiment", "save_results"]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats are rounded, everything else uses ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    precision: int = 3,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(column, ""), precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), max(len(r[i]) for r in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    lines = [header, separator]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_experiment(
    experiment_id: str,
    title: str,
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    notes: str = "",
) -> None:
    """Print one experiment's table with a header matching EXPERIMENTS.md."""
    banner = f"[{experiment_id}] {title}"
    print()
    print(banner)
    print("=" * len(banner))
    print(format_table(rows, columns))
    if notes:
        print(notes)


def save_results(
    experiment_id: str,
    rows: Sequence[Mapping[str, object]],
    *,
    directory: str | Path = "results",
) -> Path:
    """Persist the rows of one experiment as JSON under ``results/``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{experiment_id}.json"
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(list(rows), handle, indent=2, sort_keys=True, default=str)
    return target
