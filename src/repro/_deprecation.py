"""Warn-once deprecation plumbing for the legacy ``build_*`` entry points.

The unified :mod:`repro.api` layer (``Dataset`` + ``StructureRegistry``)
replaced the per-theorem builder functions as the public surface.  The old
names keep working forever — they forward to exactly the same construction
code — but each one announces its replacement with a single
:class:`DeprecationWarning` per process, so scripts see the notice once
instead of once per build.  Internal code never calls the shims (CI imports
the package under ``-W error::DeprecationWarning`` to enforce that imports
stay warning-free).
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated", "reset_deprecation_warnings"]

_WARNED: set[str] = set()


def warn_deprecated(name: str, replacement: str) -> None:
    """Emit a :class:`DeprecationWarning` for ``name``, once per process.

    ``replacement`` names the :mod:`repro.api` spelling the caller should
    migrate to; it is included verbatim in the message.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name}() is deprecated; use {replacement} instead "
        "(see docs/API.md for the unified PrivateCounter API)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Forget which shims have warned (so tests can observe the warnings)."""
    _WARNED.clear()
