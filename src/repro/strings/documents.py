"""Document collections and their sentinel-separated concatenation.

The paper indexes the database ``D = S_1, ..., S_n`` through the generalized
string ``S = S_1 $_1 S_2 $_2 ... S_n $_n`` where the sentinels ``$_i`` are
distinct symbols outside the alphabet.  :class:`ConcatenatedText` materializes
that string as an integer array together with the bookkeeping needed to map
text positions back to documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidDocumentError
from repro.strings.alphabet import Alphabet, infer_alphabet

__all__ = ["ConcatenatedText", "concatenate_documents"]


@dataclass(frozen=True)
class ConcatenatedText:
    """The generalized string ``S_1 $_1 ... S_n $_n`` in integer form.

    Attributes
    ----------
    alphabet:
        Alphabet used for the character codes.
    codes:
        Integer array of length ``sum(|S_i|) + n`` containing character codes
        followed by a unique sentinel code after each document.
    doc_ids:
        ``doc_ids[p]`` is the index of the document that position ``p``
        belongs to (sentinel positions belong to their own document).
    doc_starts:
        ``doc_starts[i]`` is the position of the first character of
        document ``i`` inside :attr:`codes`.
    doc_lengths:
        Length of each document (excluding its sentinel).
    """

    alphabet: Alphabet
    codes: np.ndarray
    doc_ids: np.ndarray
    doc_starts: np.ndarray
    doc_lengths: np.ndarray

    # ------------------------------------------------------------------
    @property
    def num_documents(self) -> int:
        return len(self.doc_starts)

    @property
    def total_length(self) -> int:
        """Total number of characters across all documents (no sentinels)."""
        return int(self.doc_lengths.sum())

    def __len__(self) -> int:
        return len(self.codes)

    # ------------------------------------------------------------------
    def is_sentinel_position(self, position: int) -> bool:
        """Return ``True`` if the given text position holds a sentinel."""
        return self.alphabet.is_sentinel(int(self.codes[position]))

    def document_of(self, position: int) -> int:
        """Return the document index owning a text position."""
        return int(self.doc_ids[position])

    def offset_in_document(self, position: int) -> int:
        """Return the offset of a text position within its document."""
        doc = self.document_of(position)
        return position - int(self.doc_starts[doc])

    def remaining_in_document(self, position: int) -> int:
        """Number of document characters from ``position`` to the end of its
        document (0 when ``position`` is the sentinel)."""
        doc = self.document_of(position)
        end = int(self.doc_starts[doc]) + int(self.doc_lengths[doc])
        return max(0, end - position)

    def substring(self, position: int, length: int) -> str:
        """Decode ``length`` characters starting at ``position``.

        The slice must not contain sentinels; this is checked.
        """
        chunk = self.codes[position : position + length]
        if len(chunk) < length or any(self.alphabet.is_sentinel(int(c)) for c in chunk):
            raise InvalidDocumentError(
                "requested substring crosses a document boundary"
            )
        return self.alphabet.decode(chunk)


def concatenate_documents(
    documents: Sequence[str], alphabet: Alphabet | None = None
) -> ConcatenatedText:
    """Build the sentinel-separated concatenation of a document collection.

    Parameters
    ----------
    documents:
        Non-empty documents over ``alphabet``.
    alphabet:
        The alphabet.  When omitted it is inferred from the documents.
    """
    if not documents:
        raise InvalidDocumentError("the document collection is empty")
    if alphabet is None:
        alphabet = infer_alphabet(documents)

    pieces: list[np.ndarray] = []
    doc_ids: list[np.ndarray] = []
    doc_starts = np.zeros(len(documents), dtype=np.int64)
    doc_lengths = np.zeros(len(documents), dtype=np.int64)

    cursor = 0
    for index, document in enumerate(documents):
        alphabet.validate_document(document)
        encoded = alphabet.encode(document)
        sentinel = np.array([alphabet.sentinel_code(index)], dtype=np.int64)
        pieces.append(encoded)
        pieces.append(sentinel)
        doc_starts[index] = cursor
        doc_lengths[index] = len(document)
        doc_ids.append(np.full(len(document) + 1, index, dtype=np.int64))
        cursor += len(document) + 1

    codes = np.concatenate(pieces)
    ids = np.concatenate(doc_ids)
    return ConcatenatedText(
        alphabet=alphabet,
        codes=codes,
        doc_ids=ids,
        doc_starts=doc_starts,
        doc_lengths=doc_lengths,
    )
