"""q-gram utilities.

A *q-gram* is a pattern of fixed length ``q``.  These helpers enumerate
q-grams and compute their exact (capped) counts, providing the ground truth
for the fixed-length structures of Theorems 3 and 4 and for mining metrics.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "iter_qgrams",
    "distinct_qgrams",
    "qgram_substring_counts",
    "qgram_document_counts",
    "qgram_capped_counts",
]


def iter_qgrams(document: str, q: int) -> Iterator[str]:
    """Yield the q-grams of ``document`` in order of occurrence (with
    repetitions)."""
    if q < 1:
        raise ValueError("q must be at least 1")
    for start in range(len(document) - q + 1):
        yield document[start : start + q]


def distinct_qgrams(documents: Iterable[str], q: int) -> set[str]:
    """The set of distinct q-grams occurring in the collection."""
    result: set[str] = set()
    for document in documents:
        result.update(iter_qgrams(document, q))
    return result


def qgram_substring_counts(documents: Sequence[str], q: int) -> Mapping[str, int]:
    """Exact substring counts (``delta = ell``) of every occurring q-gram."""
    counts: Counter[str] = Counter()
    for document in documents:
        counts.update(iter_qgrams(document, q))
    return counts


def qgram_document_counts(documents: Sequence[str], q: int) -> Mapping[str, int]:
    """Exact document counts (``delta = 1``) of every occurring q-gram."""
    counts: Counter[str] = Counter()
    for document in documents:
        counts.update(set(iter_qgrams(document, q)))
    return counts


def qgram_capped_counts(
    documents: Sequence[str], q: int, delta: int
) -> Mapping[str, int]:
    """Exact capped counts ``count_delta`` of every occurring q-gram."""
    if delta < 1:
        raise ValueError("delta must be at least 1")
    totals: Counter[str] = Counter()
    for document in documents:
        per_document = Counter(iter_qgrams(document, q))
        for qgram, occurrences in per_document.items():
            totals[qgram] += min(delta, occurrences)
    return totals
