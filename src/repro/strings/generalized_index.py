"""Exact counting over a document collection via a generalized suffix array.

:class:`GeneralizedSuffixIndex` answers the paper's exact (non-private)
counting queries for arbitrary patterns:

* ``substring_count(P)`` — total occurrences, ``count(P, D)``;
* ``document_count(P)`` — number of documents containing ``P``,
  ``count_1(P, D)``;
* ``count(P, delta)`` — the capped count ``count_delta(P, D)`` for any cap.

It indexes the sentinel-separated concatenation ``S_1 $_1 ... S_n $_n`` with a
suffix array; occurrences of a pattern over ``Sigma`` never cross a sentinel,
so the SA interval of the pattern enumerates exactly the in-document
occurrences.  Document counts use the classic "previous occurrence of the same
document" trick with a merge-sort tree, giving ``O(log^2 N)`` online queries.

The differentially private construction algorithms consume exact counts from
this index and add calibrated noise; the index itself is *not* private.
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence

import numpy as np

from repro.strings.alphabet import Alphabet, infer_alphabet
from repro.strings.documents import ConcatenatedText, concatenate_documents
from repro.strings.suffix_array import SuffixArray
from repro.strings.suffix_tree import SuffixTree

__all__ = ["GeneralizedSuffixIndex", "MergeSortTree"]


class MergeSortTree:
    """Segment tree whose nodes store sorted copies of their range.

    Supports ``count_less_than(lo, hi, threshold)``: the number of elements of
    ``values[lo:hi]`` strictly smaller than ``threshold``, in ``O(log^2 N)``.
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        self._n = len(values)
        size = 1
        while size < max(1, self._n):
            size *= 2
        self._size = size
        self._levels: list[np.ndarray] = []
        self._build(values)

    def _build(self, values: np.ndarray) -> None:
        padded = np.full(self._size, np.iinfo(np.int64).max, dtype=np.int64)
        padded[: self._n] = values
        level = padded.reshape(self._size, 1)
        self._levels.append(level)
        width = 1
        while width < self._size:
            width *= 2
            blocks = level.reshape(-1, width)
            level = np.sort(blocks, axis=1)
            self._levels.append(level)

    def count_less_than(self, lo: int, hi: int, threshold: int) -> int:
        """Number of elements of ``values[lo:hi]`` strictly below
        ``threshold``."""
        if not 0 <= lo <= hi <= self._n:
            raise ValueError(f"invalid interval [{lo}, {hi})")
        total = 0
        # Decompose [lo, hi) into canonical segment-tree blocks.
        level = 0
        while lo < hi:
            if lo % 2 == 1:
                block = self._levels[level][lo]
                total += int(np.searchsorted(block, threshold, side="left"))
                lo += 1
            if hi % 2 == 1:
                hi -= 1
                block = self._levels[level][hi]
                total += int(np.searchsorted(block, threshold, side="left"))
            lo //= 2
            hi //= 2
            level += 1
        return total


class GeneralizedSuffixIndex:
    """Exact substring / document / capped counting over a collection.

    Parameters
    ----------
    documents:
        The database ``D = S_1, ..., S_n``.
    alphabet:
        Alphabet of the data universe; inferred from the documents when
        omitted.  Supplying it explicitly matters for differential privacy,
        where the universe must not depend on the data.
    """

    def __init__(
        self, documents: Sequence[str], alphabet: Alphabet | None = None
    ) -> None:
        self.documents = list(documents)
        if alphabet is None:
            alphabet = infer_alphabet(self.documents)
        self.alphabet = alphabet
        self.concatenation: ConcatenatedText = concatenate_documents(
            self.documents, alphabet
        )
        self.suffix_array = SuffixArray.build(self.concatenation.codes)
        # Document id of the suffix at each SA rank.
        self._doc_of_rank = self.concatenation.doc_ids[self.suffix_array.sa]

    # ------------------------------------------------------------------
    # Cached helper structures
    # ------------------------------------------------------------------
    @cached_property
    def _prev_same_document(self) -> np.ndarray:
        """``prev[r]`` is the largest rank ``< r`` whose suffix belongs to the
        same document, or ``-1``."""
        n_ranks = len(self._doc_of_rank)
        prev = np.full(n_ranks, -1, dtype=np.int64)
        last_seen: dict[int, int] = {}
        for rank in range(n_ranks):
            doc = int(self._doc_of_rank[rank])
            if doc in last_seen:
                prev[rank] = last_seen[doc]
            last_seen[doc] = rank
        return prev

    @cached_property
    def _prev_tree(self) -> MergeSortTree:
        return MergeSortTree(self._prev_same_document)

    @cached_property
    def suffix_tree(self) -> SuffixTree:
        """The suffix tree of the concatenation (built lazily)."""
        return SuffixTree(self.suffix_array)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_documents(self) -> int:
        return len(self.documents)

    @property
    def max_document_length(self) -> int:
        return max((len(d) for d in self.documents), default=0)

    @property
    def total_length(self) -> int:
        return self.concatenation.total_length

    # ------------------------------------------------------------------
    # SA intervals
    # ------------------------------------------------------------------
    def pattern_interval(self, pattern: str) -> tuple[int, int]:
        """Half-open SA interval of suffixes starting with ``pattern``.

        Patterns containing characters outside the alphabet have an empty
        interval (they cannot occur in the database).
        """
        if pattern == "":
            return 0, len(self.suffix_array)
        if any(ch not in self.alphabet for ch in pattern):
            return 0, 0
        encoded = self.alphabet.encode(pattern)
        return self.suffix_array.pattern_interval(encoded)

    def extend_interval(
        self, lo: int, hi: int, depth: int, char: str
    ) -> tuple[int, int]:
        """Narrow the SA interval of a length-``depth`` pattern to the
        interval of that pattern extended by ``char``.

        Runs in ``O(log(hi - lo))`` and lets callers (such as the candidate
        trie construction) compute counts of all prefixes of a string
        incrementally.
        """
        if lo >= hi or char not in self.alphabet:
            return lo, lo
        code = self.alphabet.code(char)
        text = self.suffix_array.text
        sa = self.suffix_array.sa
        n = len(text)

        def char_at(rank: int) -> int:
            position = int(sa[rank]) + depth
            # Positions past the end of the text sort as -infinity; they can
            # never equal a character code.
            return int(text[position]) if position < n else -1

        # Lower bound: first rank with char_at >= code.
        left_lo, left_hi = lo, hi
        while left_lo < left_hi:
            mid = (left_lo + left_hi) // 2
            if char_at(mid) < code:
                left_lo = mid + 1
            else:
                left_hi = mid
        lower = left_lo
        # Upper bound: first rank with char_at > code.
        right_lo, right_hi = lower, hi
        while right_lo < right_hi:
            mid = (right_lo + right_hi) // 2
            if char_at(mid) <= code:
                right_lo = mid + 1
            else:
                right_hi = mid
        return lower, right_lo

    # ------------------------------------------------------------------
    # Counting queries
    # ------------------------------------------------------------------
    def substring_count(self, pattern: str) -> int:
        """``count(P, D)`` — total occurrences across the collection."""
        if pattern == "":
            return self.total_length
        lo, hi = self.pattern_interval(pattern)
        return hi - lo

    def substring_count_of_interval(self, lo: int, hi: int) -> int:
        """Substring count given a precomputed SA interval."""
        return hi - lo

    def document_count(self, pattern: str) -> int:
        """``count_1(P, D)`` — number of documents containing ``P``."""
        if pattern == "":
            return self.num_documents
        lo, hi = self.pattern_interval(pattern)
        return self.document_count_of_interval(lo, hi)

    def document_count_of_interval(self, lo: int, hi: int) -> int:
        """Document count given a precomputed SA interval: the number of
        ranks in ``[lo, hi)`` whose previous same-document rank falls before
        ``lo``."""
        if lo >= hi:
            return 0
        return self._prev_tree.count_less_than(lo, hi, lo)

    def count(self, pattern: str, delta: int) -> int:
        """``count_delta(P, D)`` for an arbitrary cap ``delta``."""
        if delta < 1:
            raise ValueError("delta must be at least 1")
        if pattern == "":
            lengths = np.minimum(self.concatenation.doc_lengths, delta)
            return int(lengths.sum())
        lo, hi = self.pattern_interval(pattern)
        return self.count_of_interval(lo, hi, delta)

    def count_of_interval(self, lo: int, hi: int, delta: int) -> int:
        """Capped count given a precomputed SA interval."""
        if lo >= hi:
            return 0
        if delta == 1:
            return self.document_count_of_interval(lo, hi)
        if delta >= self.max_document_length:
            return hi - lo
        per_document = np.bincount(
            self._doc_of_rank[lo:hi], minlength=self.num_documents
        )
        return int(np.minimum(per_document, delta).sum())

    def counts(self, patterns: Sequence[str], delta: int) -> list[int]:
        """Capped counts of a batch of patterns."""
        return [self.count(pattern, delta) for pattern in patterns]

    def letter_counts(self, delta: int) -> dict[str, int]:
        """``count_delta(gamma, D)`` for every letter ``gamma`` of the
        alphabet (including letters that do not occur)."""
        return {symbol: self.count(symbol, delta) for symbol in self.alphabet}

    # ------------------------------------------------------------------
    # Helpers for the suffix-tree based q-gram algorithm (Lemma 21)
    # ------------------------------------------------------------------
    def is_within_document(self, position: int, length: int) -> bool:
        """Return ``True`` when ``length`` characters starting at text
        position ``position`` stay inside one document (contain no
        sentinel)."""
        return self.concatenation.remaining_in_document(position) >= length

    def decode_prefix(self, position: int, length: int) -> str:
        """Decode ``length`` characters of the concatenation starting at
        ``position``; must stay inside one document."""
        return self.concatenation.substring(position, length)
