"""Sparse-table range-minimum queries.

Used for constant-time longest-common-extension (LCE) queries over the LCP
array, which the candidate-set construction (Lemma 7) needs to detect
suffix/prefix overlaps between candidate strings.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SparseTableRMQ"]


class SparseTableRMQ:
    """Static range-minimum structure with ``O(N log N)`` preprocessing and
    ``O(1)`` queries.

    Parameters
    ----------
    values:
        The array to preprocess.  A copy is stored.
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        self._n = len(values)
        if self._n == 0:
            self._table = np.zeros((1, 0), dtype=np.int64)
            self._log = np.zeros(1, dtype=np.int64)
            return
        levels = max(1, self._n.bit_length())
        table = np.empty((levels, self._n), dtype=np.int64)
        table[0] = values
        length = 1
        for level in range(1, levels):
            span = length * 2
            limit = self._n - span + 1
            if limit <= 0:
                table = table[:level]
                break
            table[level, :limit] = np.minimum(
                table[level - 1, :limit], table[level - 1, length : length + limit]
            )
            length = span
        self._table = table
        # Precomputed floor(log2(i)) for i in [1, n].
        log = np.zeros(self._n + 1, dtype=np.int64)
        for i in range(2, self._n + 1):
            log[i] = log[i // 2] + 1
        self._log = log

    def __len__(self) -> int:
        return self._n

    def query(self, lo: int, hi: int) -> int:
        """Minimum of ``values[lo:hi]`` (half-open interval).

        Raises :class:`ValueError` on an empty interval.
        """
        if not 0 <= lo < hi <= self._n:
            raise ValueError(f"invalid RMQ interval [{lo}, {hi})")
        span = hi - lo
        level = int(self._log[span])
        length = 1 << level
        left = int(self._table[level, lo])
        right = int(self._table[level, hi - length])
        return min(left, right)
