"""Aho-Corasick multi-pattern matching.

The differentially private construction algorithms repeatedly need exact
counts of *batches* of candidate strings against the database (Step 1 of the
construction, the baseline trie expansion, the test oracles).  The
Aho-Corasick automaton counts all occurrences of every pattern of a batch in
one pass over each document, independent of the number of matches, by
aggregating visit counts over the suffix-link tree.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

__all__ = ["AhoCorasick"]


class AhoCorasick:
    """Aho-Corasick automaton over Python strings.

    Usage::

        automaton = AhoCorasick(["ab", "be"])
        automaton.count_occurrences("abe")   # {"ab": 1, "be": 1}
    """

    def __init__(self, patterns: Iterable[str] = ()) -> None:
        # State 0 is the root.
        self._children: list[dict[str, int]] = [{}]
        self._fail: list[int] = [0]
        self._depth: list[int] = [0]
        # pattern index terminating at each state (-1 when none).
        self._terminal: list[int] = [-1]
        self.patterns: list[str] = []
        self._built = False
        for pattern in patterns:
            self.add_pattern(pattern)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pattern(self, pattern: str) -> int:
        """Add a non-empty pattern; returns its index.  Duplicate patterns
        share an index."""
        if not pattern:
            raise ValueError("patterns must be non-empty")
        if self._built:
            raise RuntimeError("cannot add patterns after the automaton is built")
        state = 0
        for char in pattern:
            nxt = self._children[state].get(char)
            if nxt is None:
                nxt = len(self._children)
                self._children.append({})
                self._fail.append(0)
                self._depth.append(self._depth[state] + 1)
                self._terminal.append(-1)
                self._children[state][char] = nxt
            state = nxt
        if self._terminal[state] >= 0:
            return self._terminal[state]
        index = len(self.patterns)
        self.patterns.append(pattern)
        self._terminal[state] = index
        return index

    def build(self) -> None:
        """Compute failure links (idempotent)."""
        if self._built:
            return
        queue: deque[int] = deque()
        for child in self._children[0].values():
            self._fail[child] = 0
            queue.append(child)
        while queue:
            state = queue.popleft()
            for char, child in self._children[state].items():
                # Follow failure links of the parent to find the failure of
                # the child.
                fallback = self._fail[state]
                while fallback and char not in self._children[fallback]:
                    fallback = self._fail[fallback]
                self._fail[child] = self._children[fallback].get(char, 0)
                if self._fail[child] == child:
                    self._fail[child] = 0
                queue.append(child)
        self._built = True

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _step(self, state: int, char: str) -> int:
        while state and char not in self._children[state]:
            state = self._fail[state]
        return self._children[state].get(char, 0)

    def _visit_counts(self, text: str) -> list[int]:
        """Number of times each state is visited while scanning ``text``."""
        visits = [0] * len(self._children)
        state = 0
        for char in text:
            state = self._step(state, char)
            visits[state] += 1
        return visits

    def count_occurrences(self, text: str) -> dict[str, int]:
        """Exact number of (possibly overlapping) occurrences of every
        pattern in ``text``."""
        self.build()
        visits = self._visit_counts(text)
        # Aggregate visit counts bottom-up over the suffix-link tree: a state
        # is "reached" whenever any state in its suffix-link subtree is
        # visited.  Processing states in order of decreasing depth guarantees
        # children are handled before their suffix-link parents.
        order = sorted(range(len(self._children)), key=lambda s: -self._depth[s])
        totals = list(visits)
        for state in order:
            if state:
                totals[self._fail[state]] += totals[state]
        result = {pattern: 0 for pattern in self.patterns}
        for state, pattern_index in enumerate(self._terminal):
            if pattern_index >= 0:
                result[self.patterns[pattern_index]] = totals[state]
        return result

    def count_over_documents(
        self, documents: Sequence[str], delta: int
    ) -> dict[str, int]:
        """``count_delta(P, D)`` for every pattern ``P`` of the automaton.

        Equivalent to summing ``min(delta, count(P, S))`` over the documents.
        """
        if delta < 1:
            raise ValueError("delta must be at least 1")
        self.build()
        totals = {pattern: 0 for pattern in self.patterns}
        for document in documents:
            per_document = self.count_occurrences(document)
            for pattern, occurrences in per_document.items():
                totals[pattern] += min(delta, occurrences)
        return totals
