"""Aho-Corasick multi-pattern matching.

The differentially private construction algorithms repeatedly need exact
counts of *batches* of candidate strings against the database (Step 1 of the
construction, the baseline trie expansion, the test oracles).  The
Aho-Corasick automaton counts all occurrences of every pattern of a batch in
one pass over each document, independent of the number of patterns, which is
what :class:`repro.counting.AhoCorasickEngine` builds on.

Two matching paths are provided:

* the classic dict API (:meth:`AhoCorasick.count_occurrences`,
  :meth:`AhoCorasick.count_over_documents`), and
* array-based batch counting (:meth:`AhoCorasick.pattern_counts`,
  :meth:`AhoCorasick.capped_counts_over_documents`) that returns numpy
  vectors indexed by pattern index and does the per-document capping
  ``min(delta, count(P, S))`` with vectorized numpy reductions.

``build()`` precomputes the full goto closure (failure transitions resolved
into one dictionary per state) and per-state *output links* (the pattern
indices whose strings are suffixes of the state's string), so the scan does
one dict lookup per character and emits matches without walking failure
chains.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

__all__ = ["AhoCorasick"]


class AhoCorasick:
    """Aho-Corasick automaton over Python strings.

    Usage::

        automaton = AhoCorasick(["ab", "be"])
        automaton.count_occurrences("abe")   # {"ab": 1, "be": 1}
    """

    def __init__(self, patterns: Iterable[str] = ()) -> None:
        # State 0 is the root.
        self._children: list[dict[str, int]] = [{}]
        self._fail: list[int] = [0]
        self._depth: list[int] = [0]
        # pattern index terminating at each state (-1 when none).
        self._terminal: list[int] = [-1]
        self.patterns: list[str] = []
        self._built = False
        # Populated by build():
        self._goto: list[dict[str, int]] = []
        self._outputs: list[tuple[int, ...]] = []
        self._state_of_pattern: np.ndarray | None = None
        for pattern in patterns:
            self.add_pattern(pattern)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_patterns(self) -> int:
        return len(self.patterns)

    @property
    def num_states(self) -> int:
        return len(self._children)

    def add_pattern(self, pattern: str) -> int:
        """Add a non-empty pattern; returns its index.  Duplicate patterns
        share an index."""
        if not pattern:
            raise ValueError("patterns must be non-empty")
        if self._built:
            raise RuntimeError("cannot add patterns after the automaton is built")
        state = 0
        for char in pattern:
            nxt = self._children[state].get(char)
            if nxt is None:
                nxt = len(self._children)
                self._children.append({})
                self._fail.append(0)
                self._depth.append(self._depth[state] + 1)
                self._terminal.append(-1)
                self._children[state][char] = nxt
            state = nxt
        if self._terminal[state] >= 0:
            return self._terminal[state]
        index = len(self.patterns)
        self.patterns.append(pattern)
        self._terminal[state] = index
        return index

    def build(self) -> None:
        """Compute failure links, the goto closure and the per-state output
        links (idempotent)."""
        if self._built:
            return
        queue: deque[int] = deque()
        for child in self._children[0].values():
            self._fail[child] = 0
            queue.append(child)
        order: list[int] = []
        while queue:
            state = queue.popleft()
            order.append(state)
            for char, child in self._children[state].items():
                # Follow failure links of the parent to find the failure of
                # the child.
                fallback = self._fail[state]
                while fallback and char not in self._children[fallback]:
                    fallback = self._fail[fallback]
                self._fail[child] = self._children[fallback].get(char, 0)
                if self._fail[child] == child:
                    self._fail[child] = 0
                queue.append(child)
        # Goto closure and output links, in BFS order so the failure target
        # (which is strictly shallower) is always finished first.
        self._goto = [dict(self._children[0])] + [{}] * (len(self._children) - 1)
        self._outputs = [()] * len(self._children)
        if self._terminal[0] >= 0:  # unreachable (patterns are non-empty)
            self._outputs[0] = (self._terminal[0],)
        for state in order:
            fail = self._fail[state]
            transitions = dict(self._goto[fail])
            transitions.update(self._children[state])
            self._goto[state] = transitions
            if self._terminal[state] >= 0:
                self._outputs[state] = self._outputs[fail] + (self._terminal[state],)
            else:
                self._outputs[state] = self._outputs[fail]
        states = np.zeros(len(self.patterns), dtype=np.int64)
        for state, pattern_index in enumerate(self._terminal):
            if pattern_index >= 0:
                states[pattern_index] = state
        self._state_of_pattern = states
        self._built = True

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _step(self, state: int, char: str) -> int:
        while state and char not in self._children[state]:
            state = self._fail[state]
        return self._children[state].get(char, 0)

    def _visit_counts(self, text: str) -> list[int]:
        """Number of times each state is visited while scanning ``text``."""
        visits = [0] * len(self._children)
        state = 0
        for char in text:
            state = self._step(state, char)
            visits[state] += 1
        return visits

    def pattern_counts(self, text: str) -> np.ndarray:
        """Occurrences of every pattern in ``text`` as an int64 vector
        indexed by pattern index (one pass over ``text``)."""
        self.build()
        matches: list[int] = []
        extend = matches.extend
        goto = self._goto
        outputs = self._outputs
        state = 0
        for char in text:
            state = goto[state].get(char, 0)
            if outputs[state]:
                extend(outputs[state])
        if not matches:
            return np.zeros(len(self.patterns), dtype=np.int64)
        return np.bincount(
            np.asarray(matches, dtype=np.int64), minlength=len(self.patterns)
        )

    def count_occurrences(self, text: str) -> dict[str, int]:
        """Exact number of (possibly overlapping) occurrences of every
        pattern in ``text``."""
        counts = self.pattern_counts(text)
        return {pattern: int(counts[i]) for i, pattern in enumerate(self.patterns)}

    def capped_counts_over_documents(
        self, documents: Sequence[str], delta: int
    ) -> np.ndarray:
        """``count_delta(P, D)`` for every pattern as an int64 vector indexed
        by pattern index.

        One pass over the concatenated collection emits every match as a
        ``(pattern, document)`` pair; the per-document capping
        ``sum_S min(delta, count(P, S))`` is then a vectorized numpy
        reduction over the match list, independent of the number of states.
        """
        if delta < 1:
            raise ValueError("delta must be at least 1")
        self.build()
        num_patterns = len(self.patterns)
        if num_patterns == 0:
            return np.zeros(0, dtype=np.int64)
        goto = self._goto
        outputs = self._outputs
        num_documents = len(documents)
        match_keys: list[int] = []
        extend = match_keys.extend
        for doc_id, document in enumerate(documents):
            state = 0
            for char in document:
                state = goto[state].get(char, 0)
                out = outputs[state]
                if out:
                    # Key = pattern * num_documents + document, so one
                    # np.unique pass groups matches per (pattern, document).
                    extend(p * num_documents + doc_id for p in out)
        if not match_keys:
            return np.zeros(num_patterns, dtype=np.int64)
        keys, counts = np.unique(
            np.asarray(match_keys, dtype=np.int64), return_counts=True
        )
        np.minimum(counts, delta, out=counts)
        return np.bincount(
            keys // num_documents, weights=counts, minlength=num_patterns
        ).astype(np.int64)

    def count_over_documents(
        self, documents: Sequence[str], delta: int
    ) -> dict[str, int]:
        """``count_delta(P, D)`` for every pattern ``P`` of the automaton.

        Equivalent to summing ``min(delta, count(P, S))`` over the documents.
        """
        totals = self.capped_counts_over_documents(documents, delta)
        return {pattern: int(totals[i]) for i, pattern in enumerate(self.patterns)}
