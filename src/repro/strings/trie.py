"""Tries and compacted tries over string collections.

The private data structures output by the paper's constructions are tries in
which every node stores a noisy count for the string it spells
(:class:`repro.core.private_trie.PrivateCountingTrie` wraps a :class:`Trie`).
The candidate trie ``T_C`` of the construction algorithm is also a
:class:`Trie`.  :class:`CompactedTrie` implements the classic compaction
(dissolving non-branching internal nodes) used to discuss storage bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["TrieNode", "Trie", "CompactedTrie"]


class TrieNode:
    """A trie node.

    Attributes
    ----------
    char:
        Label of the edge from the parent ('' for the root).
    parent:
        Parent node (``None`` for the root).
    children:
        Mapping from edge character to child node.
    depth:
        String depth (length of the spelled string).
    count:
        Exact count attached by construction algorithms (optional).
    noisy_count:
        Differentially private count attached by construction algorithms
        (optional).
    """

    __slots__ = ("char", "parent", "children", "depth", "count", "noisy_count")

    def __init__(self, char: str = "", parent: "TrieNode | None" = None) -> None:
        self.char = char
        self.parent = parent
        self.children: dict[str, TrieNode] = {}
        self.depth = 0 if parent is None else parent.depth + 1
        self.count: float | None = None
        self.noisy_count: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrieNode(char={self.char!r}, depth={self.depth})"

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def string(self) -> str:
        """The string spelled from the root to this node (``str(v)``)."""
        parts: list[str] = []
        node: TrieNode | None = self
        while node is not None and node.parent is not None:
            parts.append(node.char)
            node = node.parent
        return "".join(reversed(parts))


class Trie:
    """A rooted labeled trie supporting insertion, search and traversal."""

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self.root = TrieNode()
        self._num_nodes = 1
        for string in strings:
            self.insert(string)

    # ------------------------------------------------------------------
    # Modification
    # ------------------------------------------------------------------
    def insert(self, string: str) -> TrieNode:
        """Insert ``string`` and return the node spelling it (creating
        intermediate nodes as needed)."""
        node = self.root
        for char in string:
            child = node.children.get(char)
            if child is None:
                child = TrieNode(char, node)
                node.children[char] = child
                self._num_nodes += 1
            node = child
        return node

    def delete_subtree(self, node: TrieNode) -> int:
        """Remove ``node`` and its subtree; return the number of removed
        nodes.  The root cannot be removed."""
        if node.parent is None:
            raise ValueError("cannot delete the trie root")
        removed = sum(1 for _ in self._iter_subtree(node))
        del node.parent.children[node.char]
        node.parent = None
        self._num_nodes -= removed
        return removed

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find(self, string: str) -> TrieNode | None:
        """Return the node spelling ``string``, or ``None``."""
        node = self.root
        for char in string:
            node = node.children.get(char)
            if node is None:
                return None
        return node

    def __contains__(self, string: str) -> bool:
        return self.find(string) is not None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    @staticmethod
    def _iter_subtree(node: TrieNode) -> Iterator[TrieNode]:
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children.values())

    def iter_nodes(self, include_root: bool = True) -> Iterator[TrieNode]:
        """Iterate over all nodes in DFS preorder."""
        for node in self._iter_subtree(self.root):
            if include_root or node is not self.root:
                yield node

    def iter_strings(self) -> Iterator[str]:
        """Iterate over the strings spelled by all non-root nodes."""
        # A DFS that carries the spelled string avoids the O(depth) cost of
        # TrieNode.string() per node.
        stack: list[tuple[TrieNode, str]] = [(self.root, "")]
        while stack:
            node, prefix = stack.pop()
            if node is not self.root:
                yield prefix
            for char, child in node.children.items():
                stack.append((child, prefix + char))

    def leaves(self) -> list[TrieNode]:
        return [node for node in self.iter_nodes() if node.is_leaf]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def height(self) -> int:
        """Maximum string depth over all nodes."""
        return max((node.depth for node in self.iter_nodes()), default=0)

    def subtree_size(self, node: TrieNode) -> int:
        return sum(1 for _ in self._iter_subtree(node))


@dataclass
class CompactedTrieNode:
    """Node of a compacted trie; edges carry string labels."""

    label: str
    depth: int
    children: dict[str, "CompactedTrieNode"] = field(default_factory=dict)
    is_terminal: bool = False

    @property
    def is_leaf(self) -> bool:
        return not self.children


class CompactedTrie:
    """Compacted trie (branching nodes, the root and the leaves only).

    Built from a set of strings; non-branching unary paths are collapsed into
    single edges labeled by strings, which bounds the number of nodes by twice
    the number of inserted strings.
    """

    def __init__(self, strings: Iterable[str] = ()) -> None:
        trie = Trie(strings)
        terminal_nodes = {id(trie.find(s)) for s in set(strings) if s}
        self.root = self._compact(trie.root, terminal_nodes, depth=0)
        self._num_nodes = sum(1 for _ in self.iter_nodes())

    def _compact(
        self, node: TrieNode, terminal_nodes: set[int], depth: int
    ) -> CompactedTrieNode:
        compacted = CompactedTrieNode(
            label="", depth=depth, is_terminal=id(node) in terminal_nodes
        )
        for char, child in node.children.items():
            # Walk down unary, non-terminal chains.
            label_parts = [char]
            current = child
            while (
                len(current.children) == 1
                and id(current) not in terminal_nodes
            ):
                (next_char, next_child), = current.children.items()
                label_parts.append(next_char)
                current = next_child
            label = "".join(label_parts)
            subtree = self._compact(current, terminal_nodes, depth + len(label))
            subtree.label = label
            compacted.children[char] = subtree
        return compacted

    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[CompactedTrieNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def find(self, string: str) -> CompactedTrieNode | None:
        """Return the node whose spelled string equals ``string`` exactly
        (i.e. ``string`` ends precisely at a node), or ``None``."""
        node = self.root
        position = 0
        while position < len(string):
            child = node.children.get(string[position])
            if child is None:
                return None
            label = child.label
            if string[position : position + len(label)] != label:
                return None
            position += len(label)
            node = child
        return node
