"""Generalized suffix tree built from a suffix array and LCP array.

The paper's fast q-gram algorithm (Lemma 21) works on the suffix tree of the
concatenation ``S_1 $_1 ... S_n $_n`` and needs, for each phase ``k``:

* the *2^k-minimal* branching nodes — nodes whose string depth is at least
  ``2^k`` while their parent's string depth is smaller;
* the frequency ``f(v)`` (number of leaves below ``v``), which equals the
  number of occurrences of the length-``2^k`` prefix of ``str(v)``;
* *weighted ancestor* queries: the highest ancestor of a leaf whose string
  depth is at least a target value.

The tree is constructed in linear time from the suffix array and LCP array by
inserting suffixes in lexicographic order while maintaining the rightmost
root-to-leaf path on a stack.  Weighted ancestors are answered with binary
lifting in ``O(log N)`` (the paper uses an ``O(1)`` structure [5, 39]; see
DESIGN.md for this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.strings.suffix_array import SuffixArray

__all__ = ["SuffixTreeNode", "SuffixTree"]


@dataclass
class SuffixTreeNode:
    """A node of the suffix tree.

    Attributes
    ----------
    node_id:
        Dense identifier (0 is the root).
    string_depth:
        ``|str(v)|`` — length of the string spelled from the root to ``v``.
    parent:
        Parent node id, or ``-1`` for the root.
    children:
        Child node ids.
    leaf_position:
        Starting text position of the suffix when the node is a leaf,
        otherwise ``-1``.
    sa_lo, sa_hi:
        Half-open interval of suffix-array ranks of the leaves below the node.
    """

    node_id: int
    string_depth: int
    parent: int = -1
    children: list[int] = field(default_factory=list)
    leaf_position: int = -1
    sa_lo: int = 0
    sa_hi: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.leaf_position >= 0

    @property
    def frequency(self) -> int:
        """Number of leaves in the subtree (occurrences of ``str(v)``)."""
        return self.sa_hi - self.sa_lo


class SuffixTree:
    """Suffix tree of an integer text with unique terminator(s).

    Parameters
    ----------
    suffix_array:
        Suffix array of the text.  The text must end with a symbol that occurs
        nowhere else (sentinel-terminated texts produced by
        :func:`repro.strings.documents.concatenate_documents` satisfy this),
        which guarantees that no suffix is a proper prefix of another.
    """

    def __init__(self, suffix_array: SuffixArray) -> None:
        self._sa = suffix_array
        self.text = suffix_array.text
        self.nodes: list[SuffixTreeNode] = []
        self._leaf_of_rank: np.ndarray = np.zeros(0, dtype=np.int64)
        self._leaf_of_position: dict[int, int] = {}
        self._lift: np.ndarray | None = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, text: np.ndarray) -> "SuffixTree":
        """Build the suffix tree of ``text`` (appending a unique terminator
        when the last symbol is not already unique)."""
        text = np.asarray(text, dtype=np.int64)
        if len(text) == 0 or np.count_nonzero(text == text[-1]) != 1:
            terminator = (int(text.max()) + 1) if len(text) else 0
            text = np.concatenate([text, np.array([terminator], dtype=np.int64)])
        return cls(SuffixArray.build(text))

    def _new_node(self, string_depth: int, parent: int) -> int:
        node = SuffixTreeNode(
            node_id=len(self.nodes), string_depth=string_depth, parent=parent
        )
        self.nodes.append(node)
        return node.node_id

    def _build(self) -> None:
        sa = self._sa.sa
        lcp = self._sa.lcp
        n = len(sa)
        text_length = len(self.text)

        root = self._new_node(string_depth=0, parent=-1)
        stack = [root]
        self._leaf_of_rank = np.zeros(n, dtype=np.int64)

        for rank in range(n):
            depth = int(lcp[rank]) if rank > 0 else 0
            last_popped = -1
            while self.nodes[stack[-1]].string_depth > depth:
                last_popped = stack.pop()
            top = stack[-1]
            if self.nodes[top].string_depth < depth:
                # Split: insert an internal node between `top` and the node we
                # just popped off the rightmost path.
                mid = self._new_node(string_depth=depth, parent=top)
                self.nodes[top].children.remove(last_popped)
                self.nodes[top].children.append(mid)
                self.nodes[mid].children.append(last_popped)
                self.nodes[last_popped].parent = mid
                stack.append(mid)
                top = mid
            leaf = self._new_node(
                string_depth=text_length - int(sa[rank]), parent=top
            )
            self.nodes[leaf].leaf_position = int(sa[rank])
            self.nodes[top].children.append(leaf)
            stack.append(leaf)
            self._leaf_of_rank[rank] = leaf
            self._leaf_of_position[int(sa[rank])] = leaf

        self._assign_intervals()

    def _assign_intervals(self) -> None:
        """Compute ``sa_lo``/``sa_hi`` for every node with an iterative DFS."""
        rank_of_leaf = {int(self._leaf_of_rank[r]): r for r in range(len(self._leaf_of_rank))}
        order: list[int] = []
        stack = [0]
        while stack:
            node_id = stack.pop()
            order.append(node_id)
            stack.extend(self.nodes[node_id].children)
        for node_id in reversed(order):
            node = self.nodes[node_id]
            if node.is_leaf:
                rank = rank_of_leaf[node_id]
                node.sa_lo, node.sa_hi = rank, rank + 1
            else:
                node.sa_lo = min(self.nodes[c].sa_lo for c in node.children)
                node.sa_hi = max(self.nodes[c].sa_hi for c in node.children)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> SuffixTreeNode:
        return self.nodes[0]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[SuffixTreeNode]:
        return iter(self.nodes)

    def leaf_for_position(self, position: int) -> int:
        """Node id of the leaf representing the suffix starting at
        ``position``."""
        return self._leaf_of_position[position]

    def node_prefix_start(self, node_id: int) -> int:
        """A witness text position where ``str(v)`` occurs (the leftmost
        descending leaf in the paper's terminology)."""
        node = self.nodes[node_id]
        return int(self._sa.sa[node.sa_lo])

    def node_prefix(self, node_id: int, length: int) -> np.ndarray:
        """The first ``length`` character codes of ``str(v)``."""
        start = self.node_prefix_start(node_id)
        return self.text[start : start + length]

    # ------------------------------------------------------------------
    # x-minimal nodes
    # ------------------------------------------------------------------
    def minimal_nodes_at_depth(
        self,
        depth: int,
        is_valid_prefix: Callable[[int, int], bool] | None = None,
    ) -> list[int]:
        """Return the ``depth``-minimal nodes.

        A node ``v`` is ``x``-minimal when ``|str(v)| >= x`` and the string
        depth of its parent is smaller than ``x``: each distinct length-``x``
        substring of the text has exactly one such locus, and the node's
        frequency equals the number of occurrences of that substring.

        Parameters
        ----------
        depth:
            The target string depth ``x``.
        is_valid_prefix:
            Optional predicate ``(witness_position, depth) -> bool``; nodes
            whose length-``depth`` prefix fails the predicate are skipped
            (used to exclude prefixes that cross a document sentinel).
        """
        result: list[int] = []
        for node in self.nodes:
            if node.parent < 0:
                continue
            if node.string_depth < depth:
                continue
            if self.nodes[node.parent].string_depth >= depth:
                continue
            if is_valid_prefix is not None:
                witness = self.node_prefix_start(node.node_id)
                if not is_valid_prefix(witness, depth):
                    continue
            result.append(node.node_id)
        return result

    # ------------------------------------------------------------------
    # Weighted ancestors
    # ------------------------------------------------------------------
    def _build_lifting(self) -> None:
        num_nodes = len(self.nodes)
        levels = max(1, num_nodes.bit_length())
        lift = np.full((levels, num_nodes), -1, dtype=np.int64)
        for node in self.nodes:
            lift[0, node.node_id] = node.parent
        for level in range(1, levels):
            previous = lift[level - 1]
            current = np.where(previous >= 0, previous, 0)
            lifted = previous[current]
            lift[level] = np.where(previous >= 0, lifted, -1)
        self._lift = lift

    def weighted_ancestor(self, node_id: int, min_depth: int) -> int:
        """Return the highest (closest to the root) ancestor of ``node_id``
        (possibly the node itself) whose string depth is at least
        ``min_depth``, or ``-1`` when even ``node_id`` is too shallow."""
        if self.nodes[node_id].string_depth < min_depth:
            return -1
        if self._lift is None:
            self._build_lifting()
        assert self._lift is not None
        current = node_id
        for level in range(self._lift.shape[0] - 1, -1, -1):
            candidate = int(self._lift[level, current])
            if candidate >= 0 and self.nodes[candidate].string_depth >= min_depth:
                current = candidate
        return current

    # ------------------------------------------------------------------
    # Compacted-trie style statistics (for the storage-size claims)
    # ------------------------------------------------------------------
    def internal_nodes(self) -> list[int]:
        return [node.node_id for node in self.nodes if not node.is_leaf]

    def height(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        depth = {0: 0}
        best = 0
        stack = [0]
        while stack:
            node_id = stack.pop()
            for child in self.nodes[node_id].children:
                depth[child] = depth[node_id] + 1
                best = max(best, depth[child])
                stack.append(child)
        return best
