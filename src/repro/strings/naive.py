"""Naive reference implementations of the paper's counting functions.

These quadratic-time routines define the ground truth used throughout the
test-suite; every optimized structure (suffix array index, Aho-Corasick
automaton, private tries) is validated against them.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

__all__ = [
    "count_occurrences",
    "count_capped",
    "substring_count",
    "document_count",
    "count_delta",
    "all_substrings",
    "substring_count_table",
    "document_count_table",
]


def count_occurrences(pattern: str, document: str) -> int:
    """Number of (possibly overlapping) occurrences of ``pattern`` in
    ``document``.

    Following the paper's convention, the empty pattern occurs ``|document|``
    times.
    """
    if pattern == "":
        return len(document)
    count = 0
    start = 0
    while True:
        index = document.find(pattern, start)
        if index < 0:
            return count
        count += 1
        start = index + 1


def count_capped(pattern: str, document: str, delta: int) -> int:
    """``count_delta(P, S) = min(delta, count(P, S))``."""
    if delta < 1:
        raise ValueError("delta must be at least 1")
    return min(delta, count_occurrences(pattern, document))


def count_delta(pattern: str, documents: Sequence[str], delta: int) -> int:
    """``count_delta(P, D) = sum_S min(delta, count(P, S))``."""
    return sum(count_capped(pattern, document, delta) for document in documents)


def substring_count(pattern: str, documents: Sequence[str]) -> int:
    """Total number of occurrences of ``pattern`` across ``documents``
    (the paper's Substring Count, ``delta = ell``)."""
    return sum(count_occurrences(pattern, document) for document in documents)


def document_count(pattern: str, documents: Sequence[str]) -> int:
    """Number of documents containing ``pattern`` (Document Count,
    ``delta = 1``)."""
    if pattern == "":
        return sum(1 for document in documents if document)
    return sum(1 for document in documents if pattern in document)


def all_substrings(
    documents: Iterable[str], min_length: int = 1, max_length: int | None = None
) -> set[str]:
    """Return the set of distinct substrings of the collection with lengths in
    ``[min_length, max_length]``."""
    result: set[str] = set()
    for document in documents:
        limit = len(document) if max_length is None else min(max_length, len(document))
        for length in range(min_length, limit + 1):
            for start in range(len(document) - length + 1):
                result.add(document[start : start + length])
    return result


def substring_count_table(
    documents: Sequence[str], max_length: int | None = None
) -> Mapping[str, int]:
    """Exact substring counts of every distinct substring (up to
    ``max_length``) of the collection."""
    table: Counter[str] = Counter()
    for document in documents:
        limit = len(document) if max_length is None else min(max_length, len(document))
        for length in range(1, limit + 1):
            for start in range(len(document) - length + 1):
                table[document[start : start + length]] += 1
    return table


def document_count_table(
    documents: Sequence[str], max_length: int | None = None
) -> Mapping[str, int]:
    """Exact document counts of every distinct substring (up to
    ``max_length``) of the collection."""
    table: Counter[str] = Counter()
    for document in documents:
        limit = len(document) if max_length is None else min(max_length, len(document))
        seen: set[str] = set()
        for length in range(1, limit + 1):
            for start in range(len(document) - length + 1):
                seen.add(document[start : start + length])
        for substring in seen:
            table[substring] += 1
    return table
