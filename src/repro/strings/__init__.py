"""String-algorithm substrate: alphabets, suffix structures, tries.

This subpackage contains every classic string data structure the paper builds
on — suffix arrays, LCP/LCE structures, (generalized) suffix trees, tries,
compacted tries and an Aho-Corasick automaton — implemented from scratch on
top of numpy and the standard library.
"""

from repro.strings.alphabet import Alphabet, infer_alphabet
from repro.strings.aho_corasick import AhoCorasick
from repro.strings.documents import ConcatenatedText, concatenate_documents
from repro.strings.generalized_index import GeneralizedSuffixIndex, MergeSortTree
from repro.strings.lce import CollectionLCE, LCEIndex
from repro.strings.naive import (
    all_substrings,
    count_capped,
    count_delta,
    count_occurrences,
    document_count,
    document_count_table,
    substring_count,
    substring_count_table,
)
from repro.strings.qgrams import (
    distinct_qgrams,
    iter_qgrams,
    qgram_capped_counts,
    qgram_document_counts,
    qgram_substring_counts,
)
from repro.strings.rmq import SparseTableRMQ
from repro.strings.suffix_array import SuffixArray, build_lcp_array, build_suffix_array
from repro.strings.suffix_tree import SuffixTree, SuffixTreeNode
from repro.strings.trie import CompactedTrie, Trie, TrieNode

__all__ = [
    "Alphabet",
    "infer_alphabet",
    "AhoCorasick",
    "ConcatenatedText",
    "concatenate_documents",
    "GeneralizedSuffixIndex",
    "MergeSortTree",
    "CollectionLCE",
    "LCEIndex",
    "all_substrings",
    "count_capped",
    "count_delta",
    "count_occurrences",
    "document_count",
    "document_count_table",
    "substring_count",
    "substring_count_table",
    "distinct_qgrams",
    "iter_qgrams",
    "qgram_capped_counts",
    "qgram_document_counts",
    "qgram_substring_counts",
    "SparseTableRMQ",
    "SuffixArray",
    "build_lcp_array",
    "build_suffix_array",
    "SuffixTree",
    "SuffixTreeNode",
    "CompactedTrie",
    "Trie",
    "TrieNode",
]
