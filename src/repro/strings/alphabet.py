"""Alphabet handling and integer encoding of documents.

The library's public API works with ordinary Python strings.  Internally the
string data structures (suffix arrays, suffix trees) operate on integer numpy
arrays: every character of the alphabet ``Sigma`` is mapped to a non-negative
integer code, and per-document sentinel symbols (the ``$_i`` of the paper) are
assigned codes *above* the character range so they can never collide with a
pattern character.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidDocumentError, InvalidPatternError

__all__ = ["Alphabet", "infer_alphabet"]


@dataclass(frozen=True)
class Alphabet:
    """An ordered alphabet with a stable character <-> integer encoding.

    Parameters
    ----------
    symbols:
        The characters of the alphabet, in the order that defines their
        integer codes.  Duplicates are rejected.

    Notes
    -----
    The integer code of ``symbols[i]`` is ``i``.  Sentinel codes used when
    concatenating a document collection start at ``len(symbols)``; see
    :meth:`sentinel_code`.
    """

    symbols: tuple[str, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.symbols)) != len(self.symbols):
            raise InvalidDocumentError("alphabet contains duplicate symbols")
        for symbol in self.symbols:
            if not isinstance(symbol, str) or len(symbol) != 1:
                raise InvalidDocumentError(
                    f"alphabet symbols must be single characters, got {symbol!r}"
                )
        object.__setattr__(
            self, "_index", {symbol: code for code, symbol in enumerate(self.symbols)}
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of characters, ``|Sigma|``."""
        return len(self.symbols)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._index

    def __iter__(self):
        return iter(self.symbols)

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def code(self, symbol: str) -> int:
        """Return the integer code of a single character."""
        try:
            return self._index[symbol]
        except KeyError:
            raise InvalidPatternError(
                f"character {symbol!r} is not in the alphabet"
            ) from None

    def symbol(self, code: int) -> str:
        """Return the character with the given integer code."""
        if not 0 <= code < self.size:
            raise InvalidPatternError(f"code {code} is outside the alphabet range")
        return self.symbols[code]

    def encode(self, text: str) -> np.ndarray:
        """Encode a string into an ``int64`` numpy array of character codes."""
        try:
            return np.fromiter(
                (self._index[ch] for ch in text), dtype=np.int64, count=len(text)
            )
        except KeyError as exc:
            raise InvalidPatternError(
                f"character {exc.args[0]!r} is not in the alphabet"
            ) from None

    def decode(self, codes: Sequence[int] | np.ndarray) -> str:
        """Decode an array of character codes back into a string."""
        return "".join(self.symbols[int(code)] for code in codes)

    def sentinel_code(self, document_index: int) -> int:
        """Return the sentinel code ``$_{document_index}``.

        Sentinels occupy codes ``size, size + 1, ...`` so they are distinct
        from every character and from each other.
        """
        if document_index < 0:
            raise InvalidDocumentError("document index must be non-negative")
        return self.size + document_index

    def is_sentinel(self, code: int) -> bool:
        """Return ``True`` when ``code`` denotes a sentinel symbol."""
        return code >= self.size

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_document(self, document: str, max_length: int | None = None) -> None:
        """Check that ``document`` lies in ``Sigma^[1, max_length]``.

        Raises :class:`InvalidDocumentError` if the document is empty, too
        long, or uses characters outside the alphabet.
        """
        if not document:
            raise InvalidDocumentError("documents must be non-empty")
        if max_length is not None and len(document) > max_length:
            raise InvalidDocumentError(
                f"document of length {len(document)} exceeds the maximum {max_length}"
            )
        for ch in document:
            if ch not in self._index:
                raise InvalidDocumentError(
                    f"document character {ch!r} is not in the alphabet"
                )


def infer_alphabet(documents: Iterable[str], extra: Iterable[str] = ()) -> Alphabet:
    """Infer the alphabet of a document collection.

    The characters are ordered lexicographically so that the encoding is
    deterministic regardless of document order.

    Parameters
    ----------
    documents:
        The documents whose characters define the alphabet.
    extra:
        Additional characters guaranteed to belong to ``Sigma`` even if they
        do not occur in the collection (useful because differential privacy
        must account for patterns over the full data universe).
    """
    chars: set[str] = set(extra)
    for document in documents:
        chars.update(document)
    if not chars:
        raise InvalidDocumentError("cannot infer an alphabet from an empty collection")
    return Alphabet(tuple(sorted(chars)))
