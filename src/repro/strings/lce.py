"""Longest-common-extension (LCE) queries.

An LCE query asks for the length of the longest common prefix of two suffixes
of an indexed text.  The candidate-set completion step of the paper
(Lemma 7, Step 2) asks LCE queries between candidate strings to detect
suffix/prefix overlaps: two length-``2^k`` strings ``Q_1, Q_2`` overlap by
``2^{k+1} - m`` characters exactly when
``LCE_{Q_1,Q_2}(m - 2^k, 0) >= 2^{k+1} - m``.

Two structures are provided:

* :class:`LCEIndex` — LCE over a single integer text (rank + RMQ over LCP),
  with ``O(1)`` queries after ``O(N log N)`` preprocessing.
* :class:`CollectionLCE` — LCE between positions of different strings of a
  collection, built by concatenating the collection with unique separators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.strings.rmq import SparseTableRMQ
from repro.strings.suffix_array import SuffixArray

__all__ = ["LCEIndex", "CollectionLCE"]


class LCEIndex:
    """Constant-time LCE queries over one integer text."""

    def __init__(self, suffix_array: SuffixArray) -> None:
        self._sa = suffix_array
        self._rmq = SparseTableRMQ(suffix_array.lcp)
        self._n = len(suffix_array.text)

    @classmethod
    def from_text(cls, text: np.ndarray) -> "LCEIndex":
        return cls(SuffixArray.build(text))

    def lce(self, i: int, j: int) -> int:
        """Length of the longest common prefix of ``text[i:]`` and
        ``text[j:]``."""
        if i == j:
            return self._n - i
        if i >= self._n or j >= self._n:
            return 0
        ri, rj = int(self._sa.rank[i]), int(self._sa.rank[j])
        lo, hi = (ri, rj) if ri < rj else (rj, ri)
        return self._rmq.query(lo + 1, hi + 1)


class CollectionLCE:
    """LCE queries between positions of different strings of a collection.

    The strings are concatenated with unique separator symbols (encoded as
    integers above every string symbol), so an LCE can never extend past the
    end of either string.
    """

    def __init__(self, strings: Sequence[np.ndarray]) -> None:
        self._strings = [np.asarray(s, dtype=np.int64) for s in strings]
        if self._strings:
            max_symbol = max(
                (int(s.max()) for s in self._strings if len(s)), default=0
            )
        else:
            max_symbol = 0
        pieces: list[np.ndarray] = []
        starts = np.zeros(len(self._strings), dtype=np.int64)
        cursor = 0
        for index, string in enumerate(self._strings):
            separator = np.array([max_symbol + 1 + index], dtype=np.int64)
            pieces.append(string)
            pieces.append(separator)
            starts[index] = cursor
            cursor += len(string) + 1
        text = (
            np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.int64)
        )
        self._starts = starts
        self._index = LCEIndex.from_text(text) if len(text) else None

    def lce(self, string_a: int, offset_a: int, string_b: int, offset_b: int) -> int:
        """LCE of ``strings[string_a][offset_a:]`` and
        ``strings[string_b][offset_b:]``."""
        if self._index is None:
            return 0
        len_a = len(self._strings[string_a])
        len_b = len(self._strings[string_b])
        if offset_a >= len_a or offset_b >= len_b:
            return 0
        i = int(self._starts[string_a]) + offset_a
        j = int(self._starts[string_b]) + offset_b
        value = self._index.lce(i, j)
        return min(value, len_a - offset_a, len_b - offset_b)

    def has_overlap(self, string_a: int, string_b: int, overlap: int) -> bool:
        """Return ``True`` when the length-``overlap`` suffix of string ``a``
        equals the length-``overlap`` prefix of string ``b``."""
        if overlap == 0:
            return True
        len_a = len(self._strings[string_a])
        if overlap > len_a or overlap > len(self._strings[string_b]):
            return False
        return self.lce(string_a, len_a - overlap, string_b, 0) >= overlap
