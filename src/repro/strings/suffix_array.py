"""Suffix array and LCP array construction.

The suffix array is built with the prefix-doubling algorithm (Manber-Myers)
vectorized with numpy, which runs in ``O(N log N)`` time; the LCP array uses
Kasai's linear-time algorithm.  The paper assumes an ``O(sort(N, |Sigma|))``
suffix-tree construction [29, 30]; substituting prefix doubling changes only
polylogarithmic factors of the construction time and none of the privacy or
accuracy guarantees (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["build_suffix_array", "build_lcp_array", "SuffixArray"]


def build_suffix_array(text: np.ndarray) -> np.ndarray:
    """Return the suffix array of an integer text.

    Parameters
    ----------
    text:
        One-dimensional array of non-negative integers.

    Returns
    -------
    numpy.ndarray
        ``sa`` such that ``text[sa[0]:] < text[sa[1]:] < ...`` in
        lexicographic order.
    """
    text = np.asarray(text, dtype=np.int64)
    n = len(text)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    # Initial ranks: dense ranks of single characters.
    order = np.argsort(text, kind="stable")
    rank = np.zeros(n, dtype=np.int64)
    sorted_chars = text[order]
    rank[order] = np.cumsum(np.concatenate(([0], (np.diff(sorted_chars) > 0).astype(np.int64))))

    k = 1
    while True:
        # Rank pairs (rank[i], rank[i + k]) with -1 for out-of-range.
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        # Sort indices by (rank, second) using lexsort (last key is primary).
        order = np.lexsort((second, rank))
        pair_first = rank[order]
        pair_second = second[order]
        changed = np.ones(n, dtype=np.int64)
        changed[0] = 0
        changed[1:] = (
            (pair_first[1:] != pair_first[:-1]) | (pair_second[1:] != pair_second[:-1])
        ).astype(np.int64)
        new_rank = np.zeros(n, dtype=np.int64)
        new_rank[order] = np.cumsum(changed)
        rank = new_rank
        if rank[order[-1]] == n - 1:
            return order.astype(np.int64)
        k *= 2
        if k >= n:
            return order.astype(np.int64)


def build_lcp_array(text: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Kasai's algorithm.

    Returns ``lcp`` with ``lcp[i] = LCP(text[sa[i-1]:], text[sa[i]:])`` and
    ``lcp[0] = 0``.
    """
    text = np.asarray(text, dtype=np.int64)
    n = len(text)
    lcp = np.zeros(n, dtype=np.int64)
    if n == 0:
        return lcp
    rank = np.zeros(n, dtype=np.int64)
    rank[sa] = np.arange(n)
    h = 0
    for i in range(n):
        if rank[i] > 0:
            j = sa[rank[i] - 1]
            while i + h < n and j + h < n and text[i + h] == text[j + h]:
                h += 1
            lcp[rank[i]] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return lcp


@dataclass
class SuffixArray:
    """A suffix array with rank and LCP arrays and pattern search.

    Attributes
    ----------
    text:
        The indexed integer text.
    sa:
        Suffix array.
    rank:
        Inverse permutation of :attr:`sa` (``rank[sa[i]] = i``).
    lcp:
        LCP array (``lcp[i]`` compares suffixes ``sa[i-1]`` and ``sa[i]``).
    """

    text: np.ndarray
    sa: np.ndarray
    rank: np.ndarray
    lcp: np.ndarray

    @classmethod
    def build(cls, text: np.ndarray) -> "SuffixArray":
        """Construct the suffix array, rank and LCP arrays for ``text``."""
        text = np.asarray(text, dtype=np.int64)
        sa = build_suffix_array(text)
        rank = np.zeros(len(text), dtype=np.int64)
        rank[sa] = np.arange(len(text))
        lcp = build_lcp_array(text, sa)
        return cls(text=text, sa=sa, rank=rank, lcp=lcp)

    def __len__(self) -> int:
        return len(self.sa)

    # ------------------------------------------------------------------
    # Pattern search
    # ------------------------------------------------------------------
    def _compare_suffix(self, suffix_start: int, pattern: np.ndarray) -> int:
        """Three-way comparison of ``text[suffix_start:]`` against ``pattern``
        truncated to ``len(pattern)`` characters.

        Returns -1 / 0 / +1 when the (truncated) suffix is smaller / a match /
        larger than the pattern.
        """
        n = len(self.text)
        m = len(pattern)
        length = min(m, n - suffix_start)
        window = self.text[suffix_start : suffix_start + length]
        prefix = pattern[:length]
        diff = window != prefix
        mismatch = int(np.argmax(diff)) if diff.any() else -1
        if mismatch >= 0:
            return -1 if window[mismatch] < prefix[mismatch] else 1
        if length < m:
            # The suffix is a proper prefix of the pattern, hence smaller.
            return -1
        return 0

    def pattern_interval(self, pattern: np.ndarray) -> tuple[int, int]:
        """Return the half-open SA interval ``[lo, hi)`` of suffixes having
        ``pattern`` as a prefix.

        The empty pattern yields the full interval ``[0, len(text))``.
        Runs in ``O(|pattern| log N)`` time.
        """
        pattern = np.asarray(pattern, dtype=np.int64)
        n = len(self.sa)
        if len(pattern) == 0:
            return 0, n

        # Lower bound: first suffix >= pattern.
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare_suffix(int(self.sa[mid]), pattern) < 0:
                lo = mid + 1
            else:
                hi = mid
        lower = lo

        # Upper bound: first suffix whose truncated form is > pattern.
        lo, hi = lower, n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._compare_suffix(int(self.sa[mid]), pattern) <= 0:
                lo = mid + 1
            else:
                hi = mid
        return lower, lo

    def count_pattern(self, pattern: np.ndarray) -> int:
        """Number of occurrences of ``pattern`` in the indexed text."""
        lo, hi = self.pattern_interval(pattern)
        return hi - lo

    def occurrences(self, pattern: np.ndarray) -> np.ndarray:
        """Starting positions (unsorted) of all occurrences of ``pattern``."""
        lo, hi = self.pattern_interval(pattern)
        return self.sa[lo:hi].copy()
