"""Hierarchical domain trees.

The paper motivates its tree-counting technique with hierarchical
compositions of data items (e.g. zip code -> area -> state).  This module
provides a small, dependency-free tree representation used by the colored
tree counting application, the tree-counting benchmarks and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Sequence

__all__ = ["DomainTree", "build_balanced_hierarchy", "build_hierarchy_from_paths"]


@dataclass
class DomainTree:
    """A rooted tree whose leaves correspond to universe elements.

    Nodes are identified by hashable labels; the root is ``"root"`` by
    default.  Children are stored in insertion order.
    """

    root: Hashable = "root"
    _children: dict[Hashable, list[Hashable]] = field(default_factory=dict)
    _parent: dict[Hashable, Hashable] = field(default_factory=dict)
    #: leaf label -> universe element represented by the leaf.
    leaf_elements: dict[Hashable, Hashable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._children.setdefault(self.root, [])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_child(self, parent: Hashable, child: Hashable) -> None:
        if child in self._parent or child == self.root:
            raise ValueError(f"node {child!r} already exists in the tree")
        if parent not in self._children:
            raise ValueError(f"parent {parent!r} does not exist in the tree")
        self._children[parent].append(child)
        self._children[child] = []
        self._parent[child] = parent

    def mark_leaf(self, node: Hashable, element: Hashable) -> None:
        """Associate a universe element with a leaf node."""
        if self._children.get(node):
            raise ValueError(f"node {node!r} is not a leaf")
        self.leaf_elements[node] = element

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def children(self, node: Hashable) -> list[Hashable]:
        return list(self._children.get(node, []))

    def parent(self, node: Hashable) -> Hashable | None:
        return self._parent.get(node)

    def nodes(self) -> Iterator[Hashable]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(self._children.get(node, []))

    def leaves(self) -> list[Hashable]:
        return [node for node in self.nodes() if not self._children.get(node)]

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.nodes())

    def height(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        best = 0
        stack: list[tuple[Hashable, int]] = [(self.root, 0)]
        while stack:
            node, depth = stack.pop()
            children = self._children.get(node, [])
            if not children:
                best = max(best, depth)
            for child in children:
                stack.append((child, depth + 1))
        return best

    def leaves_below(self, node: Hashable) -> list[Hashable]:
        result = []
        stack = [node]
        while stack:
            current = stack.pop()
            children = self._children.get(current, [])
            if not children:
                result.append(current)
            stack.extend(children)
        return result

    def element_of_leaf(self, leaf: Hashable) -> Hashable:
        return self.leaf_elements.get(leaf, leaf)


def build_balanced_hierarchy(
    universe: Sequence[Hashable], branching: int = 2
) -> DomainTree:
    """Build a balanced ``branching``-ary tree whose leaves are the universe
    elements, in order."""
    if branching < 2:
        raise ValueError("branching must be at least 2")
    if not universe:
        raise ValueError("the universe must be non-empty")
    tree = DomainTree()
    # Build levels bottom-up conceptually, but create nodes top-down with
    # interval labels so the structure is easy to inspect.
    def build(parent: Hashable, lo: int, hi: int) -> None:
        if hi - lo == 1:
            leaf = ("leaf", lo)
            tree.add_child(parent, leaf)
            tree.mark_leaf(leaf, universe[lo])
            return
        span = hi - lo
        # Split into `branching` nearly equal parts.
        step = max(1, -(-span // branching))
        position = lo
        while position < hi:
            end = min(hi, position + step)
            if end - position == 1:
                leaf = ("leaf", position)
                tree.add_child(parent, leaf)
                tree.mark_leaf(leaf, universe[position])
            else:
                label = ("range", position, end)
                tree.add_child(parent, label)
                build(label, position, end)
            position = end

    build(tree.root, 0, len(universe))
    return tree


def build_hierarchy_from_paths(
    paths: Iterable[Sequence[Hashable]],
) -> DomainTree:
    """Build a hierarchy from labelled paths (e.g. ``(state, area, zip)``).

    Each input path becomes a root-to-leaf path; the leaf represents the full
    tuple.  Shared prefixes share nodes, exactly as in a trie.
    """
    tree = DomainTree()
    for path in paths:
        if not path:
            raise ValueError("hierarchy paths must be non-empty")
        parent: Hashable = tree.root
        prefix: tuple[Hashable, ...] = ()
        for label in path:
            prefix = prefix + (label,)
            node = ("path", prefix)
            if node not in tree._children:
                tree.add_child(parent, node)
            parent = node
        tree.mark_leaf(parent, tuple(path))
    return tree
