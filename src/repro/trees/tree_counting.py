"""Differentially private counting functions on trees (Theorems 8 and 9).

Given a rooted tree ``T`` and a count function ``c(v, D)`` that is

* *monotone*: ``c(v) <= sum of c(child)`` for every internal node, and
* has bounded *leaf sensitivity*: the leaf counts change by at most ``d`` in
  total between neighboring databases (and, for the approximate-DP variant,
  every single node's count changes by at most ``Delta``),

the algorithm releases estimates ``c_hat(v)`` for **all** nodes with maximum
error ``O(eps^-1 d log|V| log h log(hk/beta))`` under pure DP (Theorem 8) and
``O(eps^-1 sqrt(d Delta) log|V| log(1/delta) log(hk/beta) log h)`` under
approximate DP (Theorem 9).

The strategy mirrors the paper's main construction: decompose the tree into
heavy paths, privately release the count of every heavy-path root, privately
release all prefix sums of the difference sequence along each heavy path with
the binary-tree mechanism, and reconstruct every node's estimate as
``root estimate + prefix sum``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, TypeVar

import numpy as np

from repro.dp.composition import PrivacyAccountant, PrivacyBudget
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
)
from repro.dp.prefix_sums import PrefixSumMechanism
from repro.exceptions import SensitivityError
from repro.trees.heavy_path import HeavyPathDecomposition

__all__ = ["TreeCountingResult", "private_tree_counts", "tree_counting_error_bound"]

Node = TypeVar("Node", bound=Hashable)


@dataclass
class TreeCountingResult:
    """Output of the private tree-counting algorithm.

    Attributes
    ----------
    estimates:
        Noisy estimate ``c_hat(v)`` for every node.
    error_bound:
        The analytic high-probability bound on ``max_v |c_hat(v) - c(v)|``
        implied by the mechanisms used (holds with probability ``>= 1-beta``).
    accountant:
        Record of the privacy budget spent by the two stages.
    decomposition:
        The heavy path decomposition used (exposed for inspection and tests).
    """

    estimates: dict
    error_bound: float
    accountant: PrivacyAccountant
    decomposition: HeavyPathDecomposition

    def __getitem__(self, node) -> float:
        return self.estimates[node]


def _resolve_mechanisms(
    budget: PrivacyBudget, noiseless: bool
) -> tuple[CountingMechanism, CountingMechanism]:
    """Mechanisms for the two stages (heavy-path roots, prefix sums), each
    with half of the budget."""
    if noiseless:
        return NoiselessMechanism(), NoiselessMechanism()
    half = budget.split(2)
    if budget.is_pure:
        return LaplaceMechanism(half.epsilon), LaplaceMechanism(half.epsilon)
    return (
        GaussianMechanism(half.epsilon, half.delta),
        GaussianMechanism(half.epsilon, half.delta),
    )


def private_tree_counts(
    root: Node,
    children: Callable[[Node], Iterable[Node]],
    counts: Mapping[Node, float] | Callable[[Node], float],
    *,
    leaf_sensitivity: float,
    budget: PrivacyBudget,
    beta: float,
    node_sensitivity: float | None = None,
    rng: np.random.Generator | None = None,
    noiseless: bool = False,
) -> TreeCountingResult:
    """Release differentially private estimates of a counting function on a
    tree (Theorems 8 and 9).

    Parameters
    ----------
    root, children:
        The tree.
    counts:
        The exact counts ``c(v, D)``, either as a mapping or a callable.
    leaf_sensitivity:
        ``d`` — bound on the total L1 change of the leaf counts between
        neighboring databases.
    budget:
        The overall privacy budget; a pure budget selects the Laplace
        instantiation (Theorem 8), a budget with ``delta > 0`` selects the
        Gaussian instantiation (Theorem 9).
    beta:
        Failure probability of the reported error bound.
    node_sensitivity:
        ``Delta`` — bound on the change of any single node's count between
        neighboring databases; only used by the approximate-DP variant
        (defaults to ``leaf_sensitivity``).
    rng:
        Source of randomness (a fresh default generator when omitted).
    noiseless:
        When ``True``, run the pipeline without noise (testing only; not
        private).
    """
    if leaf_sensitivity <= 0:
        raise SensitivityError("leaf_sensitivity must be positive")
    if not 0 < beta < 1:
        raise ValueError("beta must lie in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    count_of: Callable[[Node], float]
    if callable(counts):
        count_of = counts
    else:
        count_of = counts.__getitem__

    decomposition = HeavyPathDecomposition(root, children)
    num_nodes = decomposition.num_nodes
    log_v = math.floor(math.log2(max(2, num_nodes))) + 1
    delta_node = float(
        node_sensitivity if node_sensitivity is not None else leaf_sensitivity
    )
    accountant = PrivacyAccountant()
    root_mechanism, sums_mechanism = _resolve_mechanisms(budget, noiseless)

    # ------------------------------------------------------------------
    # Stage 1: noisy counts of the heavy path roots.
    # Any leaf's change propagates to at most log|V| + 1 heavy path roots,
    # so the L1 sensitivity of the root-count vector is d * (log|V| + 1);
    # each coordinate changes by at most Delta, so by Hoelder the L2
    # sensitivity is sqrt(d * (log|V| + 1) * Delta).
    # ------------------------------------------------------------------
    roots = decomposition.path_roots()
    root_values = np.array([count_of(node) for node in roots], dtype=np.float64)
    roots_l1 = leaf_sensitivity * log_v
    roots_l2 = math.sqrt(leaf_sensitivity * log_v * delta_node)
    noisy_roots = root_mechanism.randomize(
        root_values, l1_sensitivity=roots_l1, l2_sensitivity=roots_l2, rng=rng
    )
    accountant.spend(
        "heavy-path roots", root_mechanism.epsilon if not noiseless else 0.0,
        root_mechanism.delta if not noiseless else 0.0,
    )

    # ------------------------------------------------------------------
    # Stage 2: noisy prefix sums of the difference sequences.
    # The summed L1 sensitivity of all difference sequences is at most
    # 2 d (log|V| + 1); a single sequence changes by at most 2 Delta.
    # ------------------------------------------------------------------
    sequences = decomposition.difference_sequences(count_of)
    max_length = max(1, max((len(seq) for seq in sequences), default=0))
    prefix_mechanism = PrefixSumMechanism(
        sums_mechanism,
        total_l1_sensitivity=2.0 * leaf_sensitivity * log_v,
        per_sequence_l1_sensitivity=2.0 * delta_node,
        max_length=max_length,
    )
    noisy_sums = prefix_mechanism.release_many(sequences, rng)
    accountant.spend(
        "difference-sequence prefix sums",
        sums_mechanism.epsilon if not noiseless else 0.0,
        sums_mechanism.delta if not noiseless else 0.0,
    )

    # ------------------------------------------------------------------
    # Combine: c_hat(v_i) = c_hat(path root) + noisy prefix sum of the first
    # i entries of the path's difference sequence.
    # ------------------------------------------------------------------
    estimates: dict = {}
    for path, root_estimate, sums in zip(decomposition.paths, noisy_roots, noisy_sums):
        for offset, node in enumerate(path.nodes):
            if offset == 0:
                estimates[node] = float(root_estimate)
            else:
                estimates[node] = float(root_estimate) + sums.prefix(offset)

    beta_half = beta / 2.0
    root_error = root_mechanism.sup_error_bound(
        len(roots), beta_half, l1_sensitivity=roots_l1, l2_sensitivity=roots_l2
    )
    sums_error = prefix_mechanism.sup_error_bound(len(sequences), beta_half)
    return TreeCountingResult(
        estimates=estimates,
        error_bound=root_error + sums_error,
        accountant=accountant,
        decomposition=decomposition,
    )


def tree_counting_error_bound(
    num_nodes: int,
    height: int,
    num_paths: int,
    *,
    leaf_sensitivity: float,
    budget: PrivacyBudget,
    beta: float,
    node_sensitivity: float | None = None,
) -> float:
    """Analytic error bound of :func:`private_tree_counts` without running it
    (same constants as the implementation)."""
    log_v = math.floor(math.log2(max(2, num_nodes))) + 1
    delta_node = float(
        node_sensitivity if node_sensitivity is not None else leaf_sensitivity
    )
    half = budget.split(2)
    if budget.is_pure:
        root_mechanism: CountingMechanism = LaplaceMechanism(half.epsilon)
        sums_mechanism: CountingMechanism = LaplaceMechanism(half.epsilon)
    else:
        root_mechanism = GaussianMechanism(half.epsilon, half.delta)
        sums_mechanism = GaussianMechanism(half.epsilon, half.delta)
    roots_l1 = leaf_sensitivity * log_v
    roots_l2 = math.sqrt(leaf_sensitivity * log_v * delta_node)
    root_error = root_mechanism.sup_error_bound(
        max(1, num_paths), beta / 2.0, l1_sensitivity=roots_l1, l2_sensitivity=roots_l2
    )
    prefix_mechanism = PrefixSumMechanism(
        sums_mechanism,
        total_l1_sensitivity=2.0 * leaf_sensitivity * log_v,
        per_sequence_l1_sensitivity=2.0 * delta_node,
        max_length=max(1, height),
    )
    sums_error = prefix_mechanism.sup_error_bound(max(1, num_paths), beta / 2.0)
    return root_error + sums_error
