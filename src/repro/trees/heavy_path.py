"""Heavy path decomposition (Sleator-Tarjan).

A heavy path decomposition partitions the edges of a rooted tree into *heavy*
and *light* edges: every internal node has exactly one heavy edge, pointing to
the child whose subtree contains the most nodes.  Maximal chains of heavy
edges are *heavy paths*.  The key property (Lemma 9 of the paper) is that any
root-to-leaf path crosses at most ``floor(log2 N)`` light edges, hence at most
``floor(log2 N) + 1`` heavy paths.

The decomposition is generic: it works on any rooted tree described by a root
object and a ``children`` callable, so the same code serves the candidate trie
``T_C`` (nodes are :class:`repro.strings.trie.TrieNode`), the generic tree
counting of Theorems 8/9 (nodes are arbitrary hashables) and the test-suite's
random trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, TypeVar

__all__ = ["HeavyPath", "HeavyPathDecomposition"]

Node = TypeVar("Node", bound=Hashable)


@dataclass
class HeavyPath(Generic[Node]):
    """One heavy path, listed from its topmost node (the *root* of the path)
    downwards."""

    index: int
    nodes: list[Node]

    @property
    def root(self) -> Node:
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


class HeavyPathDecomposition(Generic[Node]):
    """Heavy path decomposition of a rooted tree.

    Parameters
    ----------
    root:
        The root node.
    children:
        Callable returning the children of a node.  The tree must be finite
        and acyclic; nodes must be hashable.
    """

    def __init__(self, root: Node, children: Callable[[Node], Iterable[Node]]) -> None:
        self.root = root
        self._children = children
        self.subtree_size: dict[Node, int] = {}
        self.parent: dict[Node, Node | None] = {}
        self.depth: dict[Node, int] = {}
        self.paths: list[HeavyPath[Node]] = []
        #: node -> (path index, position within the path)
        self.position: dict[Node, tuple[int, int]] = {}
        self._decompose()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _decompose(self) -> None:
        order = self._postorder()
        # Subtree sizes bottom-up.
        for node in order:
            self.subtree_size[node] = 1 + sum(
                self.subtree_size[child] for child in self._children(node)
            )
        # Heavy child of every internal node.
        heavy_child: dict[Node, Node] = {}
        for node in order:
            children = list(self._children(node))
            if children:
                heavy_child[node] = max(children, key=lambda c: self.subtree_size[c])
        # Build the paths: each path starts at the tree root or at a node
        # reached through a light edge.
        path_starts: list[Node] = [self.root]
        stack = [self.root]
        while stack:
            node = stack.pop()
            heavy = heavy_child.get(node)
            for child in self._children(node):
                if child is not heavy:
                    path_starts.append(child)
                stack.append(child)
        for start in path_starts:
            nodes = [start]
            current = start
            while current in heavy_child:
                current = heavy_child[current]
                nodes.append(current)
            path = HeavyPath(index=len(self.paths), nodes=nodes)
            self.paths.append(path)
            for offset, node in enumerate(nodes):
                self.position[node] = (path.index, offset)

    def _postorder(self) -> list[Node]:
        """Iterative post-order traversal (children before parents)."""
        order: list[Node] = []
        stack: list[Node] = [self.root]
        self.parent[self.root] = None
        self.depth[self.root] = 0
        while stack:
            node = stack.pop()
            order.append(node)
            for child in self._children(node):
                self.parent[child] = node
                self.depth[child] = self.depth[node] + 1
                stack.append(child)
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.subtree_size)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def path_roots(self) -> list[Node]:
        """The topmost node of every heavy path."""
        return [path.root for path in self.paths]

    def path_of(self, node: Node) -> HeavyPath[Node]:
        """The heavy path containing ``node``."""
        index, _ = self.position[node]
        return self.paths[index]

    def offset_on_path(self, node: Node) -> int:
        """Position of ``node`` within its heavy path (0 for the path root)."""
        _, offset = self.position[node]
        return offset

    def is_path_root(self, node: Node) -> bool:
        return self.offset_on_path(node) == 0

    def light_edges_to(self, node: Node) -> int:
        """Number of light edges on the root-to-``node`` path (Lemma 9 bounds
        this by ``floor(log2 N)``)."""
        count = 0
        current: Node | None = node
        while current is not None:
            parent = self.parent[current]
            if parent is not None and not self._is_heavy_edge(parent, current):
                count += 1
            current = parent
        return count

    def heavy_paths_crossed_by(self, node: Node) -> list[int]:
        """Indices of the heavy paths intersected by the root-to-``node``
        path, from the deepest upwards."""
        crossed: list[int] = []
        current: Node | None = node
        while current is not None:
            path_index, offset = self.position[current]
            crossed.append(path_index)
            # Jump to the parent of the path root.
            path_root = self.paths[path_index].nodes[0]
            current = self.parent[path_root]
        return crossed

    def _is_heavy_edge(self, parent: Node, child: Node) -> bool:
        path_index, offset = self.position[child]
        if offset == 0:
            return False
        return self.paths[path_index].nodes[offset - 1] is parent or (
            self.paths[path_index].nodes[offset - 1] == parent
        )

    # ------------------------------------------------------------------
    # Derived data used by the private counting algorithms
    # ------------------------------------------------------------------
    def difference_sequences(
        self, counts: Callable[[Node], float]
    ) -> list[list[float]]:
        """The difference sequence of ``counts`` along every heavy path.

        For a path ``v_0, v_1, ..., v_{t-1}`` the sequence has ``t - 1``
        entries ``counts(v_i) - counts(v_{i-1})`` (empty for single-node
        paths).
        """
        sequences: list[list[float]] = []
        for path in self.paths:
            values = [counts(node) for node in path.nodes]
            sequences.append(
                [values[i] - values[i - 1] for i in range(1, len(values))]
            )
        return sequences

    def max_path_length(self) -> int:
        """Length (number of nodes) of the longest heavy path."""
        return max((len(path) for path in self.paths), default=0)
