"""Heavy path decomposition (Sleator-Tarjan).

A heavy path decomposition partitions the edges of a rooted tree into *heavy*
and *light* edges: every internal node has exactly one heavy edge, pointing to
the child whose subtree contains the most nodes.  Maximal chains of heavy
edges are *heavy paths*.  The key property (Lemma 9 of the paper) is that any
root-to-leaf path crosses at most ``floor(log2 N)`` light edges, hence at most
``floor(log2 N) + 1`` heavy paths.

The decomposition is generic: it works on any rooted tree described by a root
object and a ``children`` callable, so the same code serves the candidate trie
``T_C`` (nodes are :class:`repro.strings.trie.TrieNode`), the generic tree
counting of Theorems 8/9 (nodes are arbitrary hashables) and the test-suite's
random trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterable, TypeVar

import numpy as np

__all__ = ["HeavyPath", "HeavyPathDecomposition", "FlatHeavyPathDecomposition"]

Node = TypeVar("Node", bound=Hashable)


@dataclass
class HeavyPath(Generic[Node]):
    """One heavy path, listed from its topmost node (the *root* of the path)
    downwards."""

    index: int
    nodes: list[Node]

    @property
    def root(self) -> Node:
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


class HeavyPathDecomposition(Generic[Node]):
    """Heavy path decomposition of a rooted tree.

    Parameters
    ----------
    root:
        The root node.
    children:
        Callable returning the children of a node.  The tree must be finite
        and acyclic; nodes must be hashable.
    """

    def __init__(self, root: Node, children: Callable[[Node], Iterable[Node]]) -> None:
        self.root = root
        self._children = children
        self.subtree_size: dict[Node, int] = {}
        self.parent: dict[Node, Node | None] = {}
        self.depth: dict[Node, int] = {}
        self.paths: list[HeavyPath[Node]] = []
        #: node -> (path index, position within the path)
        self.position: dict[Node, tuple[int, int]] = {}
        self._decompose()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _decompose(self) -> None:
        order = self._postorder()
        # Subtree sizes bottom-up.
        for node in order:
            self.subtree_size[node] = 1 + sum(
                self.subtree_size[child] for child in self._children(node)
            )
        # Heavy child of every internal node.
        heavy_child: dict[Node, Node] = {}
        for node in order:
            children = list(self._children(node))
            if children:
                heavy_child[node] = max(children, key=lambda c: self.subtree_size[c])
        # Build the paths: each path starts at the tree root or at a node
        # reached through a light edge.
        path_starts: list[Node] = [self.root]
        stack = [self.root]
        while stack:
            node = stack.pop()
            heavy = heavy_child.get(node)
            for child in self._children(node):
                if child is not heavy:
                    path_starts.append(child)
                stack.append(child)
        for start in path_starts:
            nodes = [start]
            current = start
            while current in heavy_child:
                current = heavy_child[current]
                nodes.append(current)
            path = HeavyPath(index=len(self.paths), nodes=nodes)
            self.paths.append(path)
            for offset, node in enumerate(nodes):
                self.position[node] = (path.index, offset)

    def _postorder(self) -> list[Node]:
        """Iterative post-order traversal (children before parents)."""
        order: list[Node] = []
        stack: list[Node] = [self.root]
        self.parent[self.root] = None
        self.depth[self.root] = 0
        while stack:
            node = stack.pop()
            order.append(node)
            for child in self._children(node):
                self.parent[child] = node
                self.depth[child] = self.depth[node] + 1
                stack.append(child)
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.subtree_size)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def path_roots(self) -> list[Node]:
        """The topmost node of every heavy path."""
        return [path.root for path in self.paths]

    def path_of(self, node: Node) -> HeavyPath[Node]:
        """The heavy path containing ``node``."""
        index, _ = self.position[node]
        return self.paths[index]

    def offset_on_path(self, node: Node) -> int:
        """Position of ``node`` within its heavy path (0 for the path root)."""
        _, offset = self.position[node]
        return offset

    def is_path_root(self, node: Node) -> bool:
        return self.offset_on_path(node) == 0

    def light_edges_to(self, node: Node) -> int:
        """Number of light edges on the root-to-``node`` path (Lemma 9 bounds
        this by ``floor(log2 N)``)."""
        count = 0
        current: Node | None = node
        while current is not None:
            parent = self.parent[current]
            if parent is not None and not self._is_heavy_edge(parent, current):
                count += 1
            current = parent
        return count

    def heavy_paths_crossed_by(self, node: Node) -> list[int]:
        """Indices of the heavy paths intersected by the root-to-``node``
        path, from the deepest upwards."""
        crossed: list[int] = []
        current: Node | None = node
        while current is not None:
            path_index, offset = self.position[current]
            crossed.append(path_index)
            # Jump to the parent of the path root.
            path_root = self.paths[path_index].nodes[0]
            current = self.parent[path_root]
        return crossed

    def _is_heavy_edge(self, parent: Node, child: Node) -> bool:
        path_index, offset = self.position[child]
        if offset == 0:
            return False
        return self.paths[path_index].nodes[offset - 1] is parent or (
            self.paths[path_index].nodes[offset - 1] == parent
        )

    # ------------------------------------------------------------------
    # Derived data used by the private counting algorithms
    # ------------------------------------------------------------------
    def difference_sequences(
        self, counts: Callable[[Node], float]
    ) -> list[list[float]]:
        """The difference sequence of ``counts`` along every heavy path.

        For a path ``v_0, v_1, ..., v_{t-1}`` the sequence has ``t - 1``
        entries ``counts(v_i) - counts(v_{i-1})`` (empty for single-node
        paths).
        """
        sequences: list[list[float]] = []
        for path in self.paths:
            values = [counts(node) for node in path.nodes]
            sequences.append(
                [values[i] - values[i - 1] for i in range(1, len(values))]
            )
        return sequences

    def max_path_length(self) -> int:
        """Length (number of nodes) of the longest heavy path."""
        return max((len(path) for path in self.paths), default=0)


class FlatHeavyPathDecomposition:
    """Heavy path decomposition over a tree stored as flat numpy arrays.

    The tree is described in the CSR layout the array construction pipeline
    (:mod:`repro.core.array_build`) produces: node ``0`` is the root, node
    ids are depth-major (all depth-1 nodes, then depth-2, ...), ``parents``
    holds each node's parent id (``-1`` for the root), ``depths`` the string
    depths, and ``children[child_start[v]:child_end[v]]`` lists ``v``'s
    children in sibling order.

    The decomposition is **order-identical** to running
    :class:`HeavyPathDecomposition` on the same tree with ``children``
    returning the children in the same sibling order: identical heavy-child
    choices (first maximal-subtree child wins ties), identical path index
    order (the object version appends path starts while popping a DFS stack
    that visits children in *descending* sibling order, so starts are
    ordered by the parent's rank in that traversal, then by sibling
    position), and identical per-path node offsets.  The array construction
    pipeline relies on this to draw its noise in exactly the object
    pipeline's RNG order; ``tests/core/test_build_backends.py`` asserts the
    equivalence on random tries.

    Everything is computed in ``O(depth)`` vectorized passes over the level
    slices (plus one ``lexsort``), never per-node Python work.
    """

    def __init__(
        self,
        parents: np.ndarray,
        depths: np.ndarray,
        child_start: np.ndarray,
        child_end: np.ndarray,
        children: np.ndarray,
    ) -> None:
        n = int(parents.size)
        self.num_nodes = n
        self.parents = parents
        self.depths = depths
        max_depth = int(depths.max()) if n else 0
        # Depth-major node ids make every level a contiguous id slice.
        level_bounds = np.searchsorted(depths, np.arange(max_depth + 2))

        # --------------------------------------------------------------
        # Subtree sizes, bottom-up one level at a time.
        # --------------------------------------------------------------
        size = np.ones(n, dtype=np.int64)
        for depth in range(max_depth, 0, -1):
            lo, hi = level_bounds[depth], level_bounds[depth + 1]
            if hi > lo:
                contribution = np.bincount(
                    parents[lo:hi], weights=size[lo:hi], minlength=n
                )
                size += contribution.astype(np.int64)
        self.subtree_size = size

        # --------------------------------------------------------------
        # Heavy child of every internal node: the *first* child (in sibling
        # order) whose subtree is maximal, exactly like max(children,
        # key=subtree_size).
        # --------------------------------------------------------------
        num_edges = int(children.size)
        heavy_child = np.full(n, -1, dtype=np.int64)
        if num_edges:
            internal = np.flatnonzero(child_end > child_start)
            seg_starts = child_start[internal]
            seg_lengths = (child_end - child_start)[internal]
            seg_of_edge = np.repeat(np.arange(internal.size), seg_lengths)
            edge_parent = internal[seg_of_edge]
            child_sizes = size[children]
            seg_max = np.maximum.reduceat(child_sizes, seg_starts)
            is_max = child_sizes == seg_max[seg_of_edge]
            edge_rank = np.where(is_max, np.arange(num_edges), num_edges)
            first_max_edge = np.minimum.reduceat(edge_rank, seg_starts)
            heavy_child[internal] = children[first_max_edge]
            heavy_edge_mask = np.zeros(num_edges, dtype=bool)
            heavy_edge_mask[first_max_edge] = True
        else:
            edge_parent = np.zeros(0, dtype=np.int64)
            heavy_edge_mask = np.zeros(0, dtype=bool)
        self.heavy_child = heavy_child

        # --------------------------------------------------------------
        # Rank of every node in the object version's stack traversal (a DFS
        # that pops children in descending sibling order): within a parent,
        # the descending DFS lays out child subtrees back to front, so
        # rank(child_i) = rank(parent) + 1 + sum of later siblings' sizes.
        # --------------------------------------------------------------
        desc_rank = np.zeros(n, dtype=np.int64)
        if num_edges:
            child_sizes = size[children]
            running = np.cumsum(child_sizes)
            seg_before = running[seg_starts] - child_sizes[seg_starts]
            seg_totals = np.add.reduceat(child_sizes, seg_starts)
            after = seg_totals[seg_of_edge] - (running - seg_before[seg_of_edge])
            for depth in range(max_depth):
                lo, hi = level_bounds[depth], level_bounds[depth + 1]
                mask = (edge_parent >= lo) & (edge_parent < hi)
                if mask.any():
                    desc_rank[children[mask]] = (
                        desc_rank[edge_parent[mask]] + 1 + after[mask]
                    )

        # --------------------------------------------------------------
        # Path starts: the root plus every light child, ordered by (parent's
        # traversal rank, sibling position) — the order the object version
        # appends them in.
        # --------------------------------------------------------------
        light_edges = np.flatnonzero(~heavy_edge_mask)
        light_children = children[light_edges]
        light_order = np.lexsort((light_edges, desc_rank[edge_parent[light_edges]]))
        starts = np.concatenate(
            ([0], light_children[light_order])
        ).astype(np.int64)
        self.path_start = starts
        self.num_paths = int(starts.size)

        # --------------------------------------------------------------
        # Path membership: starts seed their own path; heavy children
        # inherit path and offset from their parent, one level at a time.
        # --------------------------------------------------------------
        path_id = np.empty(n, dtype=np.int64)
        offset = np.zeros(n, dtype=np.int64)
        path_id[starts] = np.arange(starts.size)
        for depth in range(max_depth):
            lo, hi = level_bounds[depth], level_bounds[depth + 1]
            level_nodes = np.arange(lo, hi)
            heavy = heavy_child[level_nodes]
            has_heavy = heavy >= 0
            path_id[heavy[has_heavy]] = path_id[level_nodes[has_heavy]]
            offset[heavy[has_heavy]] = offset[level_nodes[has_heavy]] + 1
        self.path_id = path_id
        self.offset_on_path = offset
        self.path_length = np.bincount(path_id, minlength=self.num_paths)
        #: node ids ordered by (path, offset): path p's nodes are the slice
        #: path_nodes[path_offsets[p]:path_offsets[p + 1]], topmost first.
        self.path_nodes = np.lexsort((offset, path_id))
        self.path_offsets = np.concatenate(
            ([0], np.cumsum(self.path_length))
        ).astype(np.int64)

    def max_path_length(self) -> int:
        """Length (number of nodes) of the longest heavy path."""
        return int(self.path_length.max()) if self.num_paths else 0

    def difference_offsets(self) -> np.ndarray:
        """Boundaries of the per-path difference sequences in the flat
        layout of :meth:`difference_sequences_flat` (length
        ``num_paths + 1``; sequence ``p`` has ``path_length[p] - 1``
        entries)."""
        return np.concatenate(([0], np.cumsum(self.path_length - 1)))

    def difference_sequences_flat(self, counts: np.ndarray) -> np.ndarray:
        """All per-path difference sequences, concatenated path-major.

        Equivalent to flattening
        :meth:`HeavyPathDecomposition.difference_sequences`: entry ``m - 1``
        of path ``p``'s sequence is ``counts[v_m] - counts[v_{m-1}]`` along
        the path's nodes.
        """
        non_root = self.offset_on_path[self.path_nodes] > 0
        lower = self.path_nodes[non_root]
        return counts[lower] - counts[self.parents[lower]]
