"""Tree substrate: heavy paths, private counting on trees, applications."""

from repro.trees.colored import (
    ColoredItem,
    exact_colored_counts,
    exact_hierarchical_counts,
    private_colored_counts,
    private_hierarchical_counts,
)
from repro.trees.heavy_path import HeavyPath, HeavyPathDecomposition
from repro.trees.range_counting import (
    RangeCountingResult,
    leaf_sum_tree_counts,
    private_range_counts,
    range_counting_tree_counts,
)
from repro.trees.hierarchy import (
    DomainTree,
    build_balanced_hierarchy,
    build_hierarchy_from_paths,
)
from repro.trees.tree_counting import (
    TreeCountingResult,
    private_tree_counts,
    tree_counting_error_bound,
)

__all__ = [
    "ColoredItem",
    "exact_colored_counts",
    "exact_hierarchical_counts",
    "private_colored_counts",
    "private_hierarchical_counts",
    "HeavyPath",
    "HeavyPathDecomposition",
    "RangeCountingResult",
    "leaf_sum_tree_counts",
    "private_range_counts",
    "range_counting_tree_counts",
    "DomainTree",
    "build_balanced_hierarchy",
    "build_hierarchy_from_paths",
    "TreeCountingResult",
    "private_tree_counts",
    "tree_counting_error_bound",
]
