"""Alternative strategies for private hierarchical counting.

Section 1.1.3 of the paper notes that the *hierarchical histogram* special
case of tree counting (every node's count equals the sum of the leaf counts
below it) can be solved by a reduction to differentially private range
counting over the leaf counts: with the binary-tree mechanism of Dwork et
al. [27] this gives error roughly ``O(log^2 u)`` for pure DP, where ``u`` is
the number of leaves.  The related-work discussion also describes the
strategy of Zhang et al. [72]: release one noisy count per leaf and obtain
every internal node's count as the sum of the noisy leaf counts below it,
which lets the noise of many leaves accumulate in high internal nodes.

This module implements both strategies with the same interface as
:func:`repro.trees.tree_counting.private_tree_counts` so benchmarks and tests
can compare the three designs (heavy paths, range-counting reduction, leaf
sums) on the same trees:

* :func:`private_range_counts` — DP prefix/range sums over an ordered vector
  of leaf counts (the range-counting primitive itself).
* :func:`range_counting_tree_counts` — the reduction: estimate every node of
  a tree by the range sum over the contiguous interval of leaves below it.
* :func:`leaf_sum_tree_counts` — the Zhang-et-al.-style baseline.

Both tree-level strategies only apply to *additive* count functions
(hierarchical histograms); the paper's generic monotone functions (e.g.
colored tree counting) are handled by Theorems 8/9 only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.dp.composition import PrivacyAccountant, PrivacyBudget
from repro.dp.mechanisms import (
    CountingMechanism,
    GaussianMechanism,
    LaplaceMechanism,
    NoiselessMechanism,
)
from repro.dp.prefix_sums import NoisyPrefixSums, PrefixSumMechanism
from repro.exceptions import SensitivityError

__all__ = [
    "RangeCountingResult",
    "private_range_counts",
    "range_counting_tree_counts",
    "leaf_sum_tree_counts",
    "range_counting_error_bound",
    "leaf_sum_error_bound",
]


def _single_release_mechanism(
    budget: PrivacyBudget, noiseless: bool
) -> CountingMechanism:
    if noiseless:
        return NoiselessMechanism()
    if budget.is_pure:
        return LaplaceMechanism(budget.epsilon)
    return GaussianMechanism(budget.epsilon, budget.delta)


# ----------------------------------------------------------------------
# Range counting over an ordered sequence of leaf counts
# ----------------------------------------------------------------------
@dataclass
class RangeCountingResult:
    """Differentially private range sums over a sequence of leaf counts.

    Attributes
    ----------
    prefix_sums:
        The noisy prefix sums released by the binary-tree mechanism.
        ``prefix_sums.prefix(m)`` estimates ``counts[0] + ... + counts[m-1]``.
    length:
        The number of leaves.
    error_bound:
        High-probability bound on the error of any *prefix* sum; a range sum
        combines two prefix sums, so its error is at most twice this value.
    accountant:
        Privacy expenditure of the release.
    """

    prefix_sums: NoisyPrefixSums
    length: int
    error_bound: float
    accountant: PrivacyAccountant

    def prefix(self, length: int) -> float:
        """Noisy estimate of the sum of the first ``length`` leaf counts."""
        if not 0 <= length <= self.length:
            raise ValueError(f"prefix length {length} out of range [0, {self.length}]")
        return self.prefix_sums.prefix(length)

    def range_sum(self, lo: int, hi: int) -> float:
        """Noisy estimate of ``counts[lo] + ... + counts[hi - 1]``."""
        if not 0 <= lo <= hi <= self.length:
            raise ValueError(f"range [{lo}, {hi}) out of bounds for {self.length} leaves")
        if lo == hi:
            return 0.0
        return self.prefix(hi) - self.prefix(lo)

    @property
    def range_error_bound(self) -> float:
        """High-probability error bound for any single range sum."""
        return 2.0 * self.error_bound


def private_range_counts(
    leaf_counts: Sequence[float] | np.ndarray,
    *,
    leaf_sensitivity: float,
    budget: PrivacyBudget,
    beta: float,
    rng: np.random.Generator | None = None,
    noiseless: bool = False,
) -> RangeCountingResult:
    """Release differentially private range sums over ``leaf_counts``.

    This is the range-counting primitive the paper cites for hierarchical
    counting (binary-tree mechanism over the leaf counts, Dwork et al. [27]).

    Parameters
    ----------
    leaf_counts:
        Exact leaf counts, in left-to-right order.
    leaf_sensitivity:
        ``d`` — bound on the total L1 change of the leaf counts between
        neighboring databases.
    budget:
        Privacy budget (pure selects Laplace noise, ``delta > 0`` Gaussian).
    beta:
        Failure probability of the reported error bound.
    rng:
        Randomness source (fresh default generator when omitted).
    noiseless:
        Skip the noise entirely (testing only; **not private**).
    """
    if leaf_sensitivity <= 0:
        raise SensitivityError("leaf_sensitivity must be positive")
    if not 0 < beta < 1:
        raise ValueError("beta must lie in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    values = np.asarray(leaf_counts, dtype=np.float64)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("leaf_counts must be a non-empty one-dimensional sequence")

    mechanism = _single_release_mechanism(budget, noiseless)
    prefix_mechanism = PrefixSumMechanism(
        mechanism,
        total_l1_sensitivity=float(leaf_sensitivity),
        per_sequence_l1_sensitivity=float(leaf_sensitivity),
        max_length=len(values),
    )
    released = prefix_mechanism.release(values, rng)
    accountant = PrivacyAccountant()
    accountant.spend(
        "range counting (binary-tree mechanism)",
        0.0 if noiseless else budget.epsilon,
        0.0 if noiseless else budget.delta,
    )
    return RangeCountingResult(
        prefix_sums=released,
        length=len(values),
        error_bound=prefix_mechanism.sup_error_bound(1, beta),
        accountant=accountant,
    )


# ----------------------------------------------------------------------
# Tree-level strategies for hierarchical histograms
# ----------------------------------------------------------------------
def _leaves_in_dfs_order(
    root: Hashable, children: Callable[[Hashable], Iterable[Hashable]]
) -> tuple[list[Hashable], dict[Hashable, tuple[int, int]]]:
    """DFS leaf order plus the contiguous leaf interval below every node.

    Any rooted tree admits a leaf order in which the leaves below each node
    form a contiguous interval — this is what makes the range-counting
    reduction work.
    """
    leaf_order: list[Hashable] = []
    intervals: dict[Hashable, tuple[int, int]] = {}

    root_children = list(children(root))
    if not root_children:
        # The root itself is a leaf.
        leaf_order.append(root)
        intervals[root] = (0, 1)
        return leaf_order, intervals

    # Iterative DFS (children expanded left to right) so deep trees do not
    # exhaust the recursion limit.
    pending_children: dict[Hashable, list[Hashable]] = {root: root_children}
    starts: dict[Hashable, int] = {root: 0}
    order_stack: list[Hashable] = [root]
    while order_stack:
        node = order_stack[-1]
        remaining = pending_children[node]
        if remaining:
            child = remaining.pop(0)
            grandchildren = list(children(child))
            if not grandchildren:
                position = len(leaf_order)
                leaf_order.append(child)
                intervals[child] = (position, position + 1)
            else:
                pending_children[child] = grandchildren
                starts[child] = len(leaf_order)
                order_stack.append(child)
        else:
            intervals[node] = (starts[node], len(leaf_order))
            order_stack.pop()
    return leaf_order, intervals


def range_counting_tree_counts(
    root: Hashable,
    children: Callable[[Hashable], Iterable[Hashable]],
    leaf_counts: Mapping[Hashable, float] | Callable[[Hashable], float],
    *,
    leaf_sensitivity: float,
    budget: PrivacyBudget,
    beta: float,
    rng: np.random.Generator | None = None,
    noiseless: bool = False,
) -> tuple[dict[Hashable, float], RangeCountingResult]:
    """Hierarchical histogram via the range-counting reduction (§1.1.3).

    Every internal node's count is recovered as the range sum over the
    contiguous interval of leaves below it, so the error of any node estimate
    is at most twice the prefix-sum error — independent of how many leaves
    lie below the node.

    Returns the per-node estimates together with the underlying
    :class:`RangeCountingResult` (whose ``range_error_bound`` bounds the error
    of every node estimate with probability at least ``1 - beta``).
    """
    if callable(leaf_counts):
        count_of = leaf_counts
    else:
        count_of = leaf_counts.__getitem__
    leaf_order, intervals = _leaves_in_dfs_order(root, children)
    values = [float(count_of(leaf)) for leaf in leaf_order]
    released = private_range_counts(
        values,
        leaf_sensitivity=leaf_sensitivity,
        budget=budget,
        beta=beta,
        rng=rng,
        noiseless=noiseless,
    )
    estimates = {
        node: released.range_sum(lo, hi) for node, (lo, hi) in intervals.items()
    }
    return estimates, released


def leaf_sum_tree_counts(
    root: Hashable,
    children: Callable[[Hashable], Iterable[Hashable]],
    leaf_counts: Mapping[Hashable, float] | Callable[[Hashable], float],
    *,
    leaf_sensitivity: float,
    budget: PrivacyBudget,
    beta: float,
    rng: np.random.Generator | None = None,
    noiseless: bool = False,
) -> tuple[dict[Hashable, float], float]:
    """Hierarchical histogram via independently noised leaves (Zhang et
    al. [72] style).

    Each leaf receives one noisy count; every internal node's estimate is the
    sum of the noisy counts of the leaves below it.  The noise of ``m``
    leaves accumulates in a node with ``m`` descendant leaves, which is the
    weakness the paper's related-work section points out.

    Returns the per-node estimates and a high-probability bound on the error
    of the *root* estimate (the worst node), for comparison against the other
    strategies.
    """
    if callable(leaf_counts):
        count_of = leaf_counts
    else:
        count_of = leaf_counts.__getitem__
    if leaf_sensitivity <= 0:
        raise SensitivityError("leaf_sensitivity must be positive")
    if not 0 < beta < 1:
        raise ValueError("beta must lie in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()

    leaf_order, intervals = _leaves_in_dfs_order(root, children)
    values = np.array([float(count_of(leaf)) for leaf in leaf_order], dtype=np.float64)
    mechanism = _single_release_mechanism(budget, noiseless)
    l2_sensitivity = float(leaf_sensitivity)
    noisy = mechanism.randomize(
        values,
        l1_sensitivity=float(leaf_sensitivity),
        l2_sensitivity=l2_sensitivity,
        rng=rng,
    )
    prefix = np.concatenate(([0.0], np.cumsum(noisy)))
    estimates = {
        node: float(prefix[hi] - prefix[lo]) for node, (lo, hi) in intervals.items()
    }
    error_bound = leaf_sum_error_bound(
        len(values), leaf_sensitivity=leaf_sensitivity, budget=budget, beta=beta
    )
    if noiseless:
        error_bound = 0.0
    return estimates, error_bound


# ----------------------------------------------------------------------
# Analytic bounds
# ----------------------------------------------------------------------
def range_counting_error_bound(
    num_leaves: int,
    *,
    leaf_sensitivity: float,
    budget: PrivacyBudget,
    beta: float,
) -> float:
    """Error bound of any node estimate of the range-counting reduction."""
    mechanism = _single_release_mechanism(budget, noiseless=False)
    prefix_mechanism = PrefixSumMechanism(
        mechanism,
        total_l1_sensitivity=float(leaf_sensitivity),
        per_sequence_l1_sensitivity=float(leaf_sensitivity),
        max_length=max(1, num_leaves),
    )
    return 2.0 * prefix_mechanism.sup_error_bound(1, beta)


def leaf_sum_error_bound(
    num_leaves: int,
    *,
    leaf_sensitivity: float,
    budget: PrivacyBudget,
    beta: float,
) -> float:
    """High-probability error bound of the root estimate of the leaf-sum
    baseline (the sum of ``num_leaves`` independent noise samples)."""
    mechanism = _single_release_mechanism(budget, noiseless=False)
    scale = mechanism.noise_scale(float(leaf_sensitivity), float(leaf_sensitivity))
    if scale == 0.0 or num_leaves < 1:
        return 0.0
    if isinstance(mechanism, LaplaceMechanism):
        from repro.dp.distributions import laplace_sum_tail_bound

        return laplace_sum_tail_bound(scale, num_leaves, beta)
    from repro.dp.distributions import gaussian_tail_bound

    return gaussian_tail_bound(scale * math.sqrt(num_leaves), beta)
