"""Colored tree counting (Section 1.1.3).

In the *colored tree counting* problem every leaf of a tree corresponds to a
universe element and every data item carries a color.  The count of a node is
the number of **distinct colors** among the data items whose element lies in
a leaf below the node.  The paper observes that this count function is
monotone and has bounded leaf sensitivity, so the generic tree counting
algorithm (Theorems 8/9) applies and yields error ``O(log^2 u * log h)`` for
pure DP.

A plain hierarchical histogram (count = number of items below a node) is also
provided, since it is the paper's first motivating example and a common
workload for the benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.dp.composition import PrivacyBudget
from repro.trees.hierarchy import DomainTree
from repro.trees.tree_counting import TreeCountingResult, private_tree_counts

__all__ = [
    "ColoredItem",
    "exact_colored_counts",
    "exact_hierarchical_counts",
    "private_colored_counts",
    "private_hierarchical_counts",
]


@dataclass(frozen=True)
class ColoredItem:
    """A data item: a universe element together with a color."""

    element: Hashable
    color: Hashable


def _element_to_leaf(tree: DomainTree) -> dict[Hashable, Hashable]:
    mapping: dict[Hashable, Hashable] = {}
    for leaf in tree.leaves():
        mapping[tree.element_of_leaf(leaf)] = leaf
    return mapping


def exact_colored_counts(
    tree: DomainTree, items: Sequence[ColoredItem]
) -> dict[Hashable, int]:
    """Exact colored counts: for every node, the number of distinct colors of
    items whose element lies below the node."""
    element_to_leaf = _element_to_leaf(tree)
    colors_at_leaf: dict[Hashable, set[Hashable]] = defaultdict(set)
    for item in items:
        leaf = element_to_leaf.get(item.element)
        if leaf is None:
            raise ValueError(f"element {item.element!r} is not a leaf of the tree")
        colors_at_leaf[leaf].add(item.color)
    counts: dict[Hashable, int] = {}
    for node in tree.nodes():
        colors: set[Hashable] = set()
        for leaf in tree.leaves_below(node):
            colors.update(colors_at_leaf.get(leaf, ()))
        counts[node] = len(colors)
    return counts


def exact_hierarchical_counts(
    tree: DomainTree, elements: Sequence[Hashable]
) -> dict[Hashable, int]:
    """Exact hierarchical histogram: for every node, the number of data items
    whose element lies below the node."""
    element_to_leaf = _element_to_leaf(tree)
    weight_at_leaf: dict[Hashable, int] = defaultdict(int)
    for element in elements:
        leaf = element_to_leaf.get(element)
        if leaf is None:
            raise ValueError(f"element {element!r} is not a leaf of the tree")
        weight_at_leaf[leaf] += 1
    counts: dict[Hashable, int] = {}
    for node in tree.nodes():
        counts[node] = sum(
            weight_at_leaf.get(leaf, 0) for leaf in tree.leaves_below(node)
        )
    return counts


def private_colored_counts(
    tree: DomainTree,
    items: Sequence[ColoredItem],
    *,
    budget: PrivacyBudget,
    beta: float = 0.05,
    rng: np.random.Generator | None = None,
    noiseless: bool = False,
) -> TreeCountingResult:
    """Differentially private colored tree counting.

    Replacing one data item changes the color sets of at most two leaves, and
    each affected count by at most one, so the leaf sensitivity is ``d = 2``
    and every node's count changes by at most ``Delta = 2``.
    """
    exact = exact_colored_counts(tree, items)
    return private_tree_counts(
        tree.root,
        tree.children,
        exact,
        leaf_sensitivity=2.0,
        node_sensitivity=2.0,
        budget=budget,
        beta=beta,
        rng=rng,
        noiseless=noiseless,
    )


def private_hierarchical_counts(
    tree: DomainTree,
    elements: Sequence[Hashable],
    *,
    budget: PrivacyBudget,
    beta: float = 0.05,
    rng: np.random.Generator | None = None,
    noiseless: bool = False,
) -> TreeCountingResult:
    """Differentially private hierarchical histogram.

    Replacing one item moves one unit of weight between two leaves, so the
    leaf sensitivity is ``d = 2`` and any node's count changes by at most
    ``Delta = 1``.
    """
    exact = exact_hierarchical_counts(tree, elements)
    return private_tree_counts(
        tree.root,
        tree.children,
        exact,
        leaf_sensitivity=2.0,
        node_sensitivity=1.0,
        budget=budget,
        beta=beta,
        rng=rng,
        noiseless=noiseless,
    )
