"""Command-line interface.

``dpsc`` exposes the library's experiments, a tiny demo, and the query
serving layer from the shell::

    dpsc list                      # list every experiment (E1-E26)
    dpsc run E1                    # regenerate one experiment's table
    dpsc run all --save results    # regenerate every table (laptop-sized)
    dpsc quickstart                # run the quickstart demo
    dpsc mine --workload genome    # private mining demo (--kind qgram-t3,
                                   #   --profile for per-stage build timings)
    dpsc releases --store ./rel    # inspect (or --build --kind ...) a store
    dpsc releases migrate          # convert JSON releases to binary in place
    dpsc epochs run --store ./rel  # continual release: stream -> epochs -> store
    dpsc epochs status --store ./rel   # schedule position and budget spend
    dpsc serve --store ./rel       # serve compiled releases over HTTP (mmap)
    dpsc query GATTACA ACGT        # query a running server
    dpsc bench-load --threads 1,8  # hammer a service, assert bit-identical

The experiments are the same ones the benchmark harness runs; the registry
below maps each id to the paper's figures and theorems.  Structure builds
go through the unified :mod:`repro.api` layer: ``--kind`` selects any
registered structure kind (docs/API.md), the serving commands are
documented in docs/SERVING.md, and the ``--count-backend`` engine-selection
heuristic in docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

import numpy as np

from repro.analysis import experiments, reporting
from repro.api import CorpusStream, Dataset, default_registry
from repro.counting import AUTO_BACKEND, BACKENDS
from repro.core.mining import mine_frequent_substrings
from repro.core.params import (
    AUTO_BUILD_BACKEND,
    BUILD_BACKENDS,
    ConstructionParams,
)
from repro.dp.composition import PrivacyBudget
from repro.exceptions import ReproError
from repro.serving import (
    BudgetLedger,
    EpochScheduler,
    QueryService,
    ReleaseStore,
    ServingClient,
    build_release,
    serve_forever,
)
from repro.workloads.genome import genome_with_motifs
from repro.workloads.transit import transit_trajectories

__all__ = ["main", "EXPERIMENT_REGISTRY"]


def _registry() -> dict[str, tuple[str, Callable[[], list[dict]]]]:
    """Experiment id -> (title, runner with benchmark-sized defaults)."""
    return {
        "E1": ("Example 1 / Figure 1: exact counts", experiments.run_example_counts),
        "E2": (
            "Examples 2-4 / Figure 2: candidate sets and heavy paths",
            experiments.run_candidate_figure,
        ),
        "E3": (
            "Figure 3: difference sequence and prefix sums",
            experiments.run_prefix_sum_figure,
        ),
        "E4": (
            "Theorem 1: pure-DP error scaling in ell",
            lambda: experiments.run_error_scaling([8, 12, 16], trials=2),
        ),
        "E5": (
            "Theorem 2: document vs substring counting",
            lambda: experiments.run_document_vs_substring([8, 16, 32]),
        ),
        "E6": (
            "Theorem 3/4: q-gram error",
            lambda: experiments.run_qgram_error([2, 4]),
        ),
        "E7": (
            "Theorem 4: q-gram construction time",
            lambda: experiments.run_qgram_timing([(40, 20), (80, 20), (160, 20)]),
        ),
        "E8": (
            "Baseline comparison (simple trie vs heavy paths)",
            lambda: experiments.run_baseline_comparison([8, 16, 24]),
        ),
        "E9": (
            "Private frequent-substring mining",
            lambda: experiments.run_mining_experiment(n=200, epsilons=(20.0, 50.0)),
        ),
        "E10": (
            "Theorem 5 packing lower bound",
            lambda: experiments.run_packing_experiment([16, 24, 32]),
        ),
        "E11": (
            "Theorem 6 substring-count lower bound",
            lambda: experiments.run_substring_lb_experiment([8, 16, 32]),
        ),
        "E12": (
            "Theorem 7 marginals reduction",
            lambda: experiments.run_marginals_experiment([4, 8]),
        ),
        "E13": (
            "Theorem 8 tree counting",
            lambda: experiments.run_tree_counting_experiment([32, 128, 512]),
        ),
        "E14": (
            "Theorem 9 / colored tree counting",
            lambda: experiments.run_colored_counting_experiment([32, 128]),
        ),
        "E15": (
            "Query-time linearity",
            lambda: experiments.run_query_time_experiment([1, 2, 4, 8, 16]),
        ),
        "E16": (
            "Binary-tree prefix sums vs naive noise",
            lambda: experiments.run_prefix_sum_ablation([8, 32, 128]),
        ),
        "E17": (
            "Heavy-path ablation",
            lambda: experiments.run_heavy_path_ablation([8, 16]),
        ),
        "E18": (
            "Hierarchical counting strategies (heavy paths vs range counting vs leaf sums)",
            lambda: experiments.run_tree_strategy_comparison([32, 128, 512]),
        ),
        "E19": (
            "Candidate-growth ablation (doubling vs one-letter extension)",
            lambda: experiments.run_candidate_growth_ablation([8, 16, 32]),
        ),
        "E20": (
            "Query-serving throughput (compiled trie vs per-node loops)",
            lambda: experiments.run_serving_throughput(),
        ),
        "E21": (
            "Counting-engine equivalence and speedup (batched Aho-Corasick vs per-pattern)",
            lambda: experiments.run_counting_engine_benchmark(),
        ),
        "E22": (
            "Batched query_many vs per-pattern query loops across structure kinds",
            lambda: experiments.run_query_many_benchmark(),
        ),
        "E23": (
            "Concurrent serving: bit-identical replays and throughput vs threads",
            lambda: experiments.run_concurrent_serving(),
        ),
        "E24": (
            "Construction pipeline: array backend vs object backend (bit-identical)",
            lambda: experiments.run_construction_benchmark(),
        ),
        "E26": (
            "Release formats: cold-start latency and RSS, JSON vs binary vs binary+mmap",
            lambda: experiments.run_release_format_benchmark(),
        ),
        "E27": (
            "Sharded serving tier: worker-count throughput scaling, bit identity, crash drill",
            lambda: experiments.run_serving_scale(),
        ),
        "E28": (
            "Continual release: O(log T) tree-schedule spend, digest-stable replay, hot reload",
            lambda: experiments.run_continual_release(),
        ),
        "E29": (
            "Chaos drill: seeded fault injection + worker kills, zero client errors, replayable",
            lambda: experiments.run_chaos_drill(),
        ),
    }


EXPERIMENT_REGISTRY = _registry()


def _cmd_list(_: argparse.Namespace) -> int:
    for experiment_id, (title, _runner) in EXPERIMENT_REGISTRY.items():
        print(f"{experiment_id:4s} {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    requested = args.experiment.upper()
    if requested == "ALL":
        experiment_ids = list(EXPERIMENT_REGISTRY)
    elif requested in EXPERIMENT_REGISTRY:
        experiment_ids = [requested]
    else:
        print(f"unknown experiment {requested!r}; try 'dpsc list'", file=sys.stderr)
        return 2
    for experiment_id in experiment_ids:
        title, runner = EXPERIMENT_REGISTRY[experiment_id]
        rows = runner()
        reporting.print_experiment(experiment_id, title, rows)
        if args.save:
            path = reporting.save_results(experiment_id, rows, directory=args.save)
            print(f"saved to {path}")
    return 0


def _cmd_quickstart(_: argparse.Namespace) -> int:
    database = experiments.example_database()
    print(f"database: {list(database)}")
    structure = (
        Dataset.from_database(database)
        .with_budget(epsilon=2.0)
        .with_beta(0.1)
        .build("heavy-path", rng=np.random.default_rng(0))
    )
    print(f"construction: {structure.metadata.construction}")
    print(f"error bound alpha = {structure.error_bound:.1f}")
    for pattern in ("ab", "be", "aaa"):
        print(
            f"  query({pattern!r}) = {structure.query(pattern):.1f}   "
            f"(exact {database.substring_count(pattern)})"
        )
    print(
        "Note: on a six-document toy database the calibrated noise dwarfs the "
        "counts, so most queries return 0 — exactly the behaviour the error "
        "bound promises.  See examples/ for realistic workloads."
    )
    return 0


def _cli_params(args: argparse.Namespace) -> ConstructionParams:
    """Construction parameters from the shared mine/releases flags."""
    return ConstructionParams(
        budget=PrivacyBudget(args.epsilon, args.delta),
        beta=0.1,
        count_backend=args.count_backend,
        build_backend=args.build_backend,
    )


def _kind_kwargs(args: argparse.Namespace) -> dict:
    """Builder keyword arguments the selected kind requires (e.g. ``q``)."""
    kind = default_registry().get(args.kind)
    return {"q": args.q} if "q" in kind.requires else {}


def _build_cli_structure(args: argparse.Namespace, database, rng):
    """One structure built from the shared --kind/--epsilon/... flags
    (the block every structure-building subcommand shares)."""
    return (
        Dataset.from_database(database)
        .with_params(_cli_params(args))
        .build(args.kind, rng=rng, **_kind_kwargs(args))
    )


def _cmd_mine(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.workload == "genome":
        database = genome_with_motifs(args.n, args.ell, rng)
    else:
        database = transit_trajectories(args.n, args.ell, rng)
    try:
        structure = _build_cli_structure(args, database, rng)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = mine_frequent_substrings(structure, structure.metadata.threshold)
    print(
        f"workload={args.workload} kind={args.kind} n={args.n} ell={args.ell} "
        f"eps={args.epsilon} alpha={structure.error_bound:.1f} "
        f"tau={result.threshold:.1f}"
    )
    for pattern, count in result.patterns[:20]:
        print(f"  {pattern:12s} noisy count {count:10.1f}")
    if not result.patterns:
        print("  (no pattern exceeded the private threshold)")
    if args.profile:
        _print_profile(structure)
    if args.trace_out:
        profile = getattr(structure, "profile", None)
        if profile is None:
            print(
                "error: no construction profile recorded (telemetry disabled?)",
                file=sys.stderr,
            )
            return 2
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(profile.chrome_trace(), handle)
        print(f"trace written to {args.trace_out} (open in Perfetto / chrome://tracing)")
    return 0


def _print_profile(structure) -> None:
    """The construction's span tree (``dpsc mine --profile``)."""
    profile = getattr(structure, "profile", None)
    if profile is None:
        print("profile: no construction profile recorded (telemetry disabled?)")
        return
    print(
        f"profile: build_backend={profile.build_backend or '?'} "
        f"total {profile.total_seconds:.3f}s"
    )
    print(profile.render())


def _build_workload_database(workload: str, n: int, ell: int, seed: int):
    rng = np.random.default_rng(seed)
    if workload == "genome":
        return genome_with_motifs(n, ell, rng), rng
    return transit_trajectories(n, ell, rng), rng


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import faults

    # DPSC_FAULTS et al. arm a chaos schedule for this process (workers
    # additionally arm themselves from the inherited environment).
    if faults.arm_from_env():
        print("fault injection armed from DPSC_FAULTS", file=sys.stderr)
    store = ReleaseStore(args.store)
    if args.workers > 1:
        from repro.serving import Cluster

        cluster = Cluster(
            store,
            args.release or None,
            workers=args.workers,
            host=args.host,
            port=args.port,
            micro_batch=not args.no_batch,
            mmap=not args.no_mmap,
        )
        try:
            cluster.start()
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            print(
                "hint: populate the store first, e.g. "
                f"'dpsc releases --store {args.store} --build genome'",
                file=sys.stderr,
            )
            return 2
        members = ", ".join(
            f"{worker.worker_id}:{worker.port}" for worker in cluster.workers()
        )
        print(
            f"dpsc cluster serving {sorted(cluster.table.versions)} "
            f"with {args.workers} workers ({members})"
        )
        print(f"router listening on http://{args.host}:{cluster.port}")
        cluster.serve_forever()
        return 0
    try:
        service = QueryService.from_store(
            store,
            args.release or None,
            micro_batch=not args.no_batch,
            mmap=not args.no_mmap,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "hint: populate the store first, e.g. "
            f"'dpsc releases --store {args.store} --build genome'",
            file=sys.stderr,
        )
        return 2
    serve_forever(service, args.host, args.port)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    client = ServingClient(args.url, timeout=args.timeout)
    if not args.patterns and args.mine is None:
        print("error: provide at least one pattern or --mine THRESHOLD", file=sys.stderr)
        return 2
    try:
        if args.mine is not None:
            patterns = client.mine(args.mine, release=args.release)
            for pattern, count in patterns[:args.limit]:
                print(f"{pattern:16s} {count:12.1f}")
            if not patterns:
                print("(no pattern exceeded the threshold)")
        elif len(args.patterns) == 1:
            print(f"{client.query(args.patterns[0], release=args.release):.1f}")
        else:
            counts = client.batch(args.patterns, release=args.release)
            for pattern, count in zip(args.patterns, counts):
                print(f"{pattern:16s} {count:12.1f}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Inspect and arm the deterministic failpoint framework
    (docs/RESILIENCE.md)."""
    from repro import faults
    import repro.serving  # noqa: F401 - importing registers every failpoint site
    import repro.serving.cluster  # noqa: F401 - router/worker sites
    import repro.serving.schedule  # noqa: F401 - scheduler site

    if args.action == "list":
        sites = sorted(faults.list_failpoints(), key=lambda site: site.name)
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "site": site.name,
                            "description": site.description,
                            "armed": site.armed_spec.to_dict()
                            if site.armed_spec is not None
                            else None,
                        }
                        for site in sites
                    ],
                    indent=2,
                )
            )
        else:
            for site in sites:
                print(f"{site.name:24s} {site.description}")
        return 0
    # arm: validate a spec file and print the environment that arms it
    if not args.spec:
        print("error: 'faults arm' needs a SPEC.json file", file=sys.stderr)
        return 2
    try:
        with open(args.spec, encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {args.spec}: {error}", file=sys.stderr)
        return 2
    if isinstance(raw, dict):
        raw = [raw]
    try:
        specs = [faults.FaultSpec.from_dict(entry) for entry in raw]
        env = faults.env_for(
            specs, seed=args.seed, scope=args.scope, log_path=args.log or None
        )
    except (TypeError, ValueError) as error:
        print(f"error: invalid fault spec: {error}", file=sys.stderr)
        return 2
    registered = {site.name for site in faults.list_failpoints()}
    for spec in specs:
        if spec.site not in registered:
            print(
                f"warning: no registered failpoint named {spec.site!r} "
                f"(known: {sorted(registered)})",
                file=sys.stderr,
            )
    for key, value in env.items():
        print(f"export {key}={json.dumps(value)}")
    if args.preview:
        scope = args.scope or "main"
        for spec in specs:
            fired = faults.replay_decisions(
                spec, seed=args.seed, scope=scope, count=args.preview
            )
            print(
                f"# {spec.site}: fires at hit indices {fired} "
                f"of the first {args.preview} (scope {scope!r}, seed {args.seed})"
            )
    return 0


def _cmd_bench_load(args: argparse.Namespace) -> int:
    """Hammer a QueryService with mixed concurrent traffic and assert every
    answer is bit-identical to a serial replay (the E23 harness)."""
    from repro.serving import (
        QueryService,
        ServingClient,
        execute_operation,
        generate_workload,
        run_load_test,
        run_load_test_processes,
    )

    try:
        thread_counts = [int(t) for t in args.threads.split(",") if t]
    except ValueError:
        thread_counts = []
    if not thread_counts or any(t < 1 for t in thread_counts):
        print(
            "error: --threads must be a comma list of positive integers, "
            f"got {args.threads!r}",
            file=sys.stderr,
        )
        return 2
    try:
        process_counts = [int(p) for p in args.processes.split(",") if p]
    except ValueError:
        process_counts = [0]
    if any(p < 1 for p in process_counts):
        print(
            "error: --processes must be a comma list of positive integers, "
            f"got {args.processes!r}",
            file=sys.stderr,
        )
        return 2
    if args.workers and not args.store:
        print("error: --workers needs --store (a cluster serves a store)", file=sys.stderr)
        return 2
    service = None
    cluster = None
    if args.url:
        target = ServingClient(args.url, timeout=args.timeout)
        verify_counters = False  # other clients may share the live server
    elif args.store and args.workers:
        from repro.serving import Cluster

        store = ReleaseStore(args.store)
        try:
            cluster = Cluster(
                store,
                workers=args.workers,
                micro_batch=not args.no_batch,
                mmap=not args.no_mmap,
            ).start()
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        # exclusive loopback tier: the counter-delta checks stay exact
        target = ServingClient(cluster.url, timeout=args.timeout)
        verify_counters = True
        print(f"started a {args.workers}-worker cluster on {cluster.url}")
    elif args.store:
        store = ReleaseStore(args.store)
        try:
            service = QueryService.from_store(
                store, micro_batch=not args.no_batch, mmap=not args.no_mmap
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        target = service
        verify_counters = True
    else:
        database, rng = _build_workload_database(
            args.workload, args.n, args.ell, args.seed
        )
        try:
            structure = _build_cli_structure(args, database, rng)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        service = QueryService(
            {args.workload: structure}, micro_batch=not args.no_batch
        )
        target = service
        verify_counters = True
    if process_counts and not isinstance(target, ServingClient):
        print(
            "error: --processes drives HTTP traffic; give it --url, or "
            "--store with --workers N",
            file=sys.stderr,
        )
        if service is not None:
            service.close()
        return 2
    try:
        workload = generate_workload(target, args.ops, seed=args.seed)
        expected = [execute_operation(target, operation) for operation in workload]
        print(
            f"{'lanes':>9s} {'ops':>7s} {'seconds':>9s} {'ops/s':>10s} "
            f"{'lookups/s':>10s} {'identical':>9s} {'counters':>8s}"
        )
        failures = 0
        rows = []

        def report(result, label):
            nonlocal failures
            ok = result.bit_identical and (
                result.counters_consistent or not verify_counters
            )
            failures += 0 if ok else 1
            rows.append(result.row())
            print(
                f"{label:>9s} {result.operations:7d} "
                f"{result.seconds:9.3f} {result.ops_per_second:10.0f} "
                f"{result.queries_per_second:10.0f} "
                f"{str(result.bit_identical):>9s} "
                f"{str(result.counters_consistent):>8s}"
            )
            for kind in sorted(result.percentiles):
                quantiles = result.percentiles[kind]
                rendered = "  ".join(
                    f"{name}={value * 1e3:.3f}ms"
                    for name, value in quantiles.items()
                )
                print(f"          {kind:8s} {rendered}")
            for line in result.errors[:5]:
                print(f"  error: {line}", file=sys.stderr)

        for threads in thread_counts:
            result = run_load_test(
                target,
                workload,
                threads=threads,
                expected=expected,
                verify_counters=verify_counters,
            )
            report(result, f"{threads}t")
        for processes in process_counts:
            result = run_load_test_processes(
                target.base_url,
                workload,
                processes=processes,
                expected=expected,
                verify_counters=verify_counters,
            )
            report(result, f"{processes}p")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump({"results": rows}, handle, indent=2)
            print(f"results written to {args.json}")
        if failures:
            print(f"error: {failures} replay(s) diverged", file=sys.stderr)
            return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if service is not None:
            service.close()
        if cluster is not None:
            cluster.stop()
    return 0


def _cmd_releases(args: argparse.Namespace) -> int:
    if args.url:
        client = ServingClient(args.url)
        try:
            infos = client.releases()
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for info in infos:
            marker = "*" if info["default"] else " "
            print(
                f"{marker} {info['name']:16s} eps={info['epsilon']:<8g} "
                f"delta={info['delta']:<10g} patterns={info['num_patterns']:<8d} "
                f"{info['construction']}"
            )
        return 0

    store = ReleaseStore(args.store, format=args.format)
    if args.action == "migrate":
        try:
            migrated = store.migrate(args.name or None)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if migrated:
            for record in migrated:
                print(
                    f"migrated {record.name} v{record.version} -> "
                    f"{record.format} (digest {record.digest[:12]}... verified)"
                )
        else:
            print("(nothing to migrate: every release is already binary)")
    if args.build:
        database, rng = _build_workload_database(
            args.build, args.n, args.ell, args.seed
        )
        ledger = BudgetLedger(
            PrivacyBudget(args.cap_epsilon, args.cap_delta),
            path=store.root / "ledger.json",
        )
        name = args.name or args.build
        try:
            structure = build_release(
                database,
                _cli_params(args),
                ledger=ledger,
                database_id=name,
                label=f"build:{args.build}:{args.kind}",
                rng=rng,
                kind=args.kind,
                **_kind_kwargs(args),
            )
        except ReproError as error:
            print(f"refused: {error}", file=sys.stderr)
            return 2
        record = store.save(name, structure, format=args.format)
        ledger.record_release(
            name,
            version=record.version,
            digest=record.digest,
            format=record.format,
        )
        spent = ledger.spent(name)
        print(
            f"saved {record.name} v{record.version} [{record.format}] "
            f"({record.num_patterns} patterns, digest {record.digest[:12]}...)"
        )
        print(
            f"ledger[{name}]: spent eps={spent.epsilon:g} delta={spent.delta:g} "
            f"of cap eps={args.cap_epsilon:g} delta={args.cap_delta:g}"
        )
    records = store.list_releases()
    if not records:
        print(f"(store {store.root} is empty)")
    for record in records:
        marker = "*" if record.pinned else " "
        print(
            f"{marker} {record.name:16s} v{record.version:<4d} "
            f"[{record.format:6s}] eps={record.epsilon:<8g} "
            f"delta={record.delta:<10g} "
            f"patterns={record.num_patterns:<8d} {record.construction}"
        )
    return 0


def _epoch_stream(args: argparse.Namespace) -> CorpusStream:
    """A synthetic append-only stream: the workload's documents split into
    ``--epochs`` contiguous arrival batches."""
    database, _rng = _build_workload_database(args.workload, args.n, args.ell, args.seed)
    documents = list(database)
    epochs = max(1, args.epochs)
    if len(documents) < epochs:
        raise ReproError(
            f"--epochs {epochs} needs at least that many documents (--n {args.n})"
        )
    stream = CorpusStream(name=args.name or args.workload)
    base, extra = divmod(len(documents), epochs)
    start = 0
    for index in range(epochs):
        size = base + (1 if index < extra else 0)
        stream.append_epoch(documents[start : start + size])
        start += size
    return stream


def _open_epoch_ledger(store: ReleaseStore, args: argparse.Namespace) -> BudgetLedger:
    return BudgetLedger(
        PrivacyBudget(args.cap_epsilon, args.cap_delta),
        path=store.root / "ledger.json",
    )


def _cmd_epochs(args: argparse.Namespace) -> int:
    store = ReleaseStore(args.store)
    if args.action == "status":
        ledger_path = store.root / "ledger.json"
        if not ledger_path.exists():
            print(f"(no ledger at {ledger_path}: no epochs have been released)")
            return 0
        # Open with the *persisted* cap so a read-only status can never
        # tighten the recorded policy (the ledger keeps component-wise mins).
        persisted = json.loads(ledger_path.read_text()).get("cap") or {}
        ledger = BudgetLedger(
            PrivacyBudget(
                persisted.get("epsilon", args.cap_epsilon),
                persisted.get("delta", args.cap_delta),
            ),
            path=ledger_path,
        )
        names = [args.name] if args.name else ledger.database_ids()
        shown = 0
        for name in names:
            entries = ledger.epoch_entries(name)
            if not entries:
                continue
            shown += 1
            spent = ledger.spent(name)
            naive = sum(entry["epsilon"] for entry in entries[:1]) * len(entries)
            print(
                f"{name}: {len(entries)} epoch(s) released, "
                f"spent eps={spent.epsilon:g} delta={spent.delta:g} "
                f"of cap eps={ledger.cap.epsilon:g} delta={ledger.cap.delta:g} "
                f"(naive sequential composition: eps={naive:g})"
            )
            for entry in entries:
                print(
                    f"  epoch {entry['epoch']:<4d} marginal "
                    f"eps={entry['epsilon']:<8g} delta={entry['delta']:<10g} "
                    f"label={entry['label']}"
                )
        for record in store.list_releases():
            if record.epoch is not None and (not args.name or record.name == args.name):
                print(
                    f"  {record.name} v{record.version} <- epoch {record.epoch}"
                    + (
                        f" (parent v{record.parent_version})"
                        if record.parent_version is not None
                        else ""
                    )
                )
        if not shown:
            print("(the ledger has no epoch charges yet)")
        return 0

    # action == "run": drive the scheduler over a synthetic stream.
    try:
        stream = _epoch_stream(args)
        ledger = _open_epoch_ledger(store, args)
        scheduler = EpochScheduler(
            stream,
            store,
            ledger,
            params=_cli_params(args),
            seed=args.seed,
            base_kind=args.kind,
            **_kind_kwargs(args),
        )
        released = scheduler.run_pending()
    except ReproError as error:
        print(f"refused: {error}", file=sys.stderr)
        return 2
    for release in released:
        print(
            f"epoch {release.epoch:<4d} -> {stream.name} v{release.version} "
            f"(marginal eps={release.epsilon:g}, spent eps={release.spent_epsilon:g}, "
            f"{release.num_patterns} patterns, digest {release.digest[:12]}...)"
        )
    if not released:
        print("(nothing to release: the store is already at the stream head)")
    status = scheduler.status()
    print(
        f"schedule: {status['released_epochs']}/{status['stream_epochs']} epochs, "
        f"tree-bound eps={status['tree_bound_epsilon']:g} vs "
        f"naive eps={status['naive_epsilon']:g}, "
        f"cap eps={status['cap_epsilon']:g}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dpsc",
        description="Differentially private substring and document counting",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list all experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", help="experiment id, e.g. E4, or 'all' for every experiment"
    )
    run_parser.add_argument(
        "--save", default="", help="directory to save the result rows to"
    )
    run_parser.set_defaults(func=_cmd_run)

    quick_parser = subparsers.add_parser("quickstart", help="run the quickstart demo")
    quick_parser.set_defaults(func=_cmd_quickstart)

    mine_parser = subparsers.add_parser("mine", help="private mining demo")
    mine_parser.add_argument("--workload", choices=("genome", "transit"), default="genome")
    mine_parser.add_argument("--n", type=int, default=300)
    mine_parser.add_argument("--ell", type=int, default=12)
    mine_parser.add_argument("--epsilon", type=float, default=20.0)
    mine_parser.add_argument("--seed", type=int, default=0)
    mine_parser.add_argument(
        "--profile",
        action="store_true",
        help="print the construction's span tree (per-stage wall+CPU times)",
    )
    mine_parser.add_argument(
        "--trace-out",
        default="",
        metavar="PATH",
        help="write the construction trace as Chrome trace-event JSON "
        "(loadable in Perfetto)",
    )
    _add_build_arguments(mine_parser)
    mine_parser.set_defaults(func=_cmd_mine)

    serve_parser = subparsers.add_parser(
        "serve", help="serve compiled releases from a store over HTTP"
    )
    serve_parser.add_argument("--store", required=True, help="release store directory")
    serve_parser.add_argument(
        "--release",
        action="append",
        default=[],
        help="release name to serve (repeatable; default: every release)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080)
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="serve through the sharded cluster tier: N pre-forked worker "
        "processes mmap-sharing one release copy behind a hash-sharding "
        "router on --port (1 = the single-process server)",
    )
    serve_parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable micro-batching of concurrent single queries",
    )
    serve_parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="load binary releases into private memory instead of "
        "page-cache-shared read-only maps",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    query_parser = subparsers.add_parser(
        "query", help="query a running dpsc server"
    )
    query_parser.add_argument(
        "patterns", nargs="*", default=[], help="patterns to count (>=2 uses /batch)"
    )
    query_parser.add_argument("--url", default="http://127.0.0.1:8080")
    query_parser.add_argument("--release", default=None)
    query_parser.add_argument(
        "--mine",
        type=float,
        default=None,
        metavar="THRESHOLD",
        help="mine frequent patterns at this threshold instead of querying",
    )
    query_parser.add_argument("--limit", type=int, default=20)
    query_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="total per-call budget in seconds, retries included (default: "
        "per-endpoint — /healthz 5s, /query 30s, /mine 120s; see "
        "docs/RESILIENCE.md)",
    )
    query_parser.set_defaults(func=_cmd_query)

    faults_parser = subparsers.add_parser(
        "faults",
        help="list failpoint sites or validate/arm a chaos schedule "
        "(docs/RESILIENCE.md)",
    )
    faults_parser.add_argument(
        "action",
        choices=("list", "arm"),
        help="'list': every registered failpoint site; 'arm': validate a "
        "fault-spec JSON file and print the DPSC_FAULTS environment that "
        "arms it for 'dpsc serve'",
    )
    faults_parser.add_argument(
        "spec", nargs="?", default=None, help="fault-spec JSON file (for 'arm')"
    )
    faults_parser.add_argument("--json", action="store_true", help="JSON output")
    faults_parser.add_argument(
        "--seed", type=int, default=0, help="injection schedule seed"
    )
    faults_parser.add_argument(
        "--scope", default=None, help="decision-stream scope (default 'main')"
    )
    faults_parser.add_argument(
        "--log", default="", help="append the injection log to this JSONL file"
    )
    faults_parser.add_argument(
        "--preview",
        type=int,
        default=0,
        metavar="N",
        help="also print which of the first N hits would fire per site",
    )
    faults_parser.set_defaults(func=_cmd_faults)

    bench_parser = subparsers.add_parser(
        "bench-load",
        help="load-test a query service with mixed concurrent traffic",
    )
    bench_parser.add_argument(
        "--threads",
        default="1,2,4,8",
        help="comma list of thread counts to replay the workload with",
    )
    bench_parser.add_argument(
        "--processes",
        default="",
        metavar="P[,P...]",
        help="also replay from this many spawned client *processes* (a "
        "single client is GIL-bound and cannot saturate the cluster tier); "
        "needs an HTTP target: --url, or --store with --workers",
    )
    bench_parser.add_argument(
        "--ops", type=int, default=2000, help="operations per replay"
    )
    bench_parser.add_argument(
        "--store", default="", help="serve the releases of this store"
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="with --store: serve it through an exclusive loopback cluster "
        "of N workers and hammer that over HTTP (counter checks stay exact)",
    )
    bench_parser.add_argument(
        "--url", default="", help="hammer a running server instead (skips "
        "the counter check: other clients may share it)",
    )
    bench_parser.add_argument(
        "--workload", choices=("genome", "transit"), default="genome",
        help="workload to build in-process when no --store/--url is given",
    )
    bench_parser.add_argument("--n", type=int, default=1000)
    bench_parser.add_argument("--ell", type=int, default=12)
    bench_parser.add_argument("--epsilon", type=float, default=60.0)
    bench_parser.add_argument("--seed", type=int, default=0)
    bench_parser.add_argument(
        "--no-batch",
        action="store_true",
        help="disable micro-batching of concurrent single queries",
    )
    bench_parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="load binary releases into private memory instead of "
        "page-cache-shared read-only maps",
    )
    bench_parser.add_argument(
        "--json",
        default="",
        metavar="PATH",
        help="also write every replay row (throughput + per-endpoint "
        "latency percentiles) as JSON to PATH",
    )
    bench_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="total per-call client budget in seconds, retries included "
        "(default: per-endpoint; only meaningful for HTTP targets)",
    )
    _add_build_arguments(bench_parser)
    bench_parser.set_defaults(func=_cmd_bench_load)

    releases_parser = subparsers.add_parser(
        "releases", help="list, build or migrate stored releases"
    )
    releases_parser.add_argument(
        "action",
        nargs="?",
        choices=("list", "migrate"),
        default="list",
        help="'list' (default) or 'migrate': convert JSON payloads to the "
        "binary format in place, digest-verified before anything is removed",
    )
    releases_parser.add_argument(
        "--store", default="releases", help="release store directory"
    )
    releases_parser.add_argument(
        "--format",
        choices=("auto", "json", "binary"),
        default="auto",
        help="payload format for new saves ('auto' = binary, the serving "
        "format; 'json' keeps the human-readable compatibility format)",
    )
    releases_parser.add_argument(
        "--url", default="", help="list a running server instead of a store"
    )
    releases_parser.add_argument(
        "--build",
        choices=("genome", "transit"),
        default="",
        help="build a workload release into the store before listing",
    )
    releases_parser.add_argument("--name", default="", help="release name (default: workload)")
    releases_parser.add_argument("--n", type=int, default=300)
    releases_parser.add_argument("--ell", type=int, default=12)
    releases_parser.add_argument("--epsilon", type=float, default=20.0)
    releases_parser.add_argument("--cap-epsilon", type=float, default=100.0)
    releases_parser.add_argument("--cap-delta", type=float, default=1e-5)
    releases_parser.add_argument("--seed", type=int, default=0)
    _add_build_arguments(releases_parser)
    releases_parser.set_defaults(func=_cmd_releases)

    epochs_parser = subparsers.add_parser(
        "epochs",
        help="continual release: build one store version per stream epoch "
        "under the O(log T) dyadic-tree budget schedule",
    )
    epochs_parser.add_argument(
        "action",
        choices=("run", "status"),
        help="'run': release every pending epoch of a synthetic workload "
        "stream; 'status': print the schedule position, per-epoch charges "
        "and budget spend recorded in the store's ledger",
    )
    epochs_parser.add_argument(
        "--store", required=True, help="release store directory (ledger lives inside)"
    )
    epochs_parser.add_argument(
        "--workload", choices=("genome", "transit"), default="genome"
    )
    epochs_parser.add_argument(
        "--epochs",
        type=int,
        default=4,
        help="number of arrival batches the workload is split into",
    )
    epochs_parser.add_argument(
        "--name", default="", help="release name / database id (default: workload)"
    )
    epochs_parser.add_argument("--n", type=int, default=120)
    epochs_parser.add_argument("--ell", type=int, default=10)
    epochs_parser.add_argument("--epsilon", type=float, default=20.0)
    epochs_parser.add_argument(
        "--cap-epsilon",
        type=float,
        default=200.0,
        help="ledger cap; (floor(log2 T)+1) * --epsilon funds a horizon of T",
    )
    epochs_parser.add_argument("--cap-delta", type=float, default=1e-5)
    epochs_parser.add_argument("--seed", type=int, default=0)
    _add_build_arguments(epochs_parser)
    epochs_parser.set_defaults(func=_cmd_epochs)
    return parser


def _add_build_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that builds a structure: the kind
    (dispatched through the repro.api registry), its q-gram length, the
    approximate-DP delta and the counting backend."""
    parser.add_argument(
        "--kind",
        choices=default_registry().kinds(),
        default="heavy-path",
        help="structure kind to build (see docs/API.md; q-gram kinds use --q)",
    )
    parser.add_argument(
        "--q",
        type=int,
        default=3,
        help="pattern length for the q-gram structure kinds",
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=0.0,
        help="privacy parameter delta (required > 0 by kind qgram-t4)",
    )
    parser.add_argument(
        "--count-backend",
        choices=(AUTO_BACKEND,) + BACKENDS,
        default=AUTO_BACKEND,
        help="exact-counting engine for the construction (speed only; "
        "recorded in the release metadata — see docs/ARCHITECTURE.md)",
    )
    parser.add_argument(
        "--build-backend",
        choices=(AUTO_BUILD_BACKEND,) + BUILD_BACKENDS,
        default=AUTO_BUILD_BACKEND,
        help="construction pipeline: 'array' (numpy fast path, the 'auto' "
        "default) or 'object' (linked-node reference); bit-identical "
        "results either way — see docs/PERFORMANCE.md",
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
