"""Command-line interface.

``dpsc`` exposes the library's experiments and a tiny demo from the shell::

    dpsc list                      # list every experiment (E1-E19)
    dpsc run E1                    # regenerate one experiment's table
    dpsc run all --save results    # regenerate every table (laptop-sized)
    dpsc quickstart                # run the quickstart demo
    dpsc mine --workload genome    # private mining demo

The experiments are the same ones the benchmark harness runs; see DESIGN.md
and EXPERIMENTS.md for the mapping to the paper's figures and theorems.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

import numpy as np

from repro.analysis import experiments, reporting
from repro.core.construction import build_private_counting_structure
from repro.core.mining import mine_frequent_substrings
from repro.core.params import ConstructionParams
from repro.workloads.genome import genome_with_motifs
from repro.workloads.transit import transit_trajectories

__all__ = ["main", "EXPERIMENT_REGISTRY"]


def _registry() -> dict[str, tuple[str, Callable[[], list[dict]]]]:
    """Experiment id -> (title, runner with benchmark-sized defaults)."""
    return {
        "E1": ("Example 1 / Figure 1: exact counts", experiments.run_example_counts),
        "E2": (
            "Examples 2-4 / Figure 2: candidate sets and heavy paths",
            experiments.run_candidate_figure,
        ),
        "E3": (
            "Figure 3: difference sequence and prefix sums",
            experiments.run_prefix_sum_figure,
        ),
        "E4": (
            "Theorem 1: pure-DP error scaling in ell",
            lambda: experiments.run_error_scaling([8, 12, 16], trials=2),
        ),
        "E5": (
            "Theorem 2: document vs substring counting",
            lambda: experiments.run_document_vs_substring([8, 16, 32]),
        ),
        "E6": (
            "Theorem 3/4: q-gram error",
            lambda: experiments.run_qgram_error([2, 4]),
        ),
        "E7": (
            "Theorem 4: q-gram construction time",
            lambda: experiments.run_qgram_timing([(40, 20), (80, 20), (160, 20)]),
        ),
        "E8": (
            "Baseline comparison (simple trie vs heavy paths)",
            lambda: experiments.run_baseline_comparison([8, 16, 24]),
        ),
        "E9": (
            "Private frequent-substring mining",
            lambda: experiments.run_mining_experiment(n=200, epsilons=(20.0, 50.0)),
        ),
        "E10": (
            "Theorem 5 packing lower bound",
            lambda: experiments.run_packing_experiment([16, 24, 32]),
        ),
        "E11": (
            "Theorem 6 substring-count lower bound",
            lambda: experiments.run_substring_lb_experiment([8, 16, 32]),
        ),
        "E12": (
            "Theorem 7 marginals reduction",
            lambda: experiments.run_marginals_experiment([4, 8]),
        ),
        "E13": (
            "Theorem 8 tree counting",
            lambda: experiments.run_tree_counting_experiment([32, 128, 512]),
        ),
        "E14": (
            "Theorem 9 / colored tree counting",
            lambda: experiments.run_colored_counting_experiment([32, 128]),
        ),
        "E15": (
            "Query-time linearity",
            lambda: experiments.run_query_time_experiment([1, 2, 4, 8, 16]),
        ),
        "E16": (
            "Binary-tree prefix sums vs naive noise",
            lambda: experiments.run_prefix_sum_ablation([8, 32, 128]),
        ),
        "E17": (
            "Heavy-path ablation",
            lambda: experiments.run_heavy_path_ablation([8, 16]),
        ),
        "E18": (
            "Hierarchical counting strategies (heavy paths vs range counting vs leaf sums)",
            lambda: experiments.run_tree_strategy_comparison([32, 128, 512]),
        ),
        "E19": (
            "Candidate-growth ablation (doubling vs one-letter extension)",
            lambda: experiments.run_candidate_growth_ablation([8, 16, 32]),
        ),
    }


EXPERIMENT_REGISTRY = _registry()


def _cmd_list(_: argparse.Namespace) -> int:
    for experiment_id, (title, _runner) in EXPERIMENT_REGISTRY.items():
        print(f"{experiment_id:4s} {title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    requested = args.experiment.upper()
    if requested == "ALL":
        experiment_ids = list(EXPERIMENT_REGISTRY)
    elif requested in EXPERIMENT_REGISTRY:
        experiment_ids = [requested]
    else:
        print(f"unknown experiment {requested!r}; try 'dpsc list'", file=sys.stderr)
        return 2
    for experiment_id in experiment_ids:
        title, runner = EXPERIMENT_REGISTRY[experiment_id]
        rows = runner()
        reporting.print_experiment(experiment_id, title, rows)
        if args.save:
            path = reporting.save_results(experiment_id, rows, directory=args.save)
            print(f"saved to {path}")
    return 0


def _cmd_quickstart(_: argparse.Namespace) -> int:
    database = experiments.example_database()
    print(f"database: {list(database)}")
    params = ConstructionParams.pure(epsilon=2.0, beta=0.1)
    structure = build_private_counting_structure(
        database, params, rng=np.random.default_rng(0)
    )
    print(f"construction: {structure.metadata.construction}")
    print(f"error bound alpha = {structure.error_bound:.1f}")
    for pattern in ("ab", "be", "aaa"):
        print(
            f"  query({pattern!r}) = {structure.query(pattern):.1f}   "
            f"(exact {database.substring_count(pattern)})"
        )
    print(
        "Note: on a six-document toy database the calibrated noise dwarfs the "
        "counts, so most queries return 0 — exactly the behaviour the error "
        "bound promises.  See examples/ for realistic workloads."
    )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.workload == "genome":
        database = genome_with_motifs(args.n, args.ell, rng)
    else:
        database = transit_trajectories(args.n, args.ell, rng)
    params = ConstructionParams.pure(args.epsilon, beta=0.1)
    structure = build_private_counting_structure(database, params, rng=rng)
    result = mine_frequent_substrings(structure, structure.metadata.threshold)
    print(
        f"workload={args.workload} n={args.n} ell={args.ell} eps={args.epsilon} "
        f"alpha={structure.error_bound:.1f} tau={result.threshold:.1f}"
    )
    for pattern, count in result.patterns[:20]:
        print(f"  {pattern:12s} noisy count {count:10.1f}")
    if not result.patterns:
        print("  (no pattern exceeded the private threshold)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dpsc",
        description="Differentially private substring and document counting",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list all experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", help="experiment id, e.g. E4, or 'all' for every experiment"
    )
    run_parser.add_argument(
        "--save", default="", help="directory to save the result rows to"
    )
    run_parser.set_defaults(func=_cmd_run)

    quick_parser = subparsers.add_parser("quickstart", help="run the quickstart demo")
    quick_parser.set_defaults(func=_cmd_quickstart)

    mine_parser = subparsers.add_parser("mine", help="private mining demo")
    mine_parser.add_argument("--workload", choices=("genome", "transit"), default="genome")
    mine_parser.add_argument("--n", type=int, default=300)
    mine_parser.add_argument("--ell", type=int, default=12)
    mine_parser.add_argument("--epsilon", type=float, default=20.0)
    mine_parser.add_argument("--seed", type=int, default=0)
    mine_parser.set_defaults(func=_cmd_mine)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
