"""The ``heavy-path-continual`` structure kind: re-releases under the tree
schedule.

The builder realizes the release side of the continual-observation pipeline
(:class:`~repro.dp.ContinualAccountant` is the accounting side): the release
after epoch ``t`` of a :class:`~repro.api.CorpusStream` is assembled from one
standard ``heavy-path`` structure per dyadic interval of
``canonical_cover(t)``, each built over *only its interval's documents* with
the full per-epoch budget and a deterministic per-interval RNG seeded as
``(seed, lo, hi)``.

Why this is cheap and sound:

* exactly one new interval — ``[t - lowbit(t), t)`` — completes at epoch
  ``t``, so with a cache only one ``heavy-path`` build runs per epoch;
* intervals of one dyadic level hold disjoint documents, so a level costs one
  epoch budget under parallel composition, and the cumulative spend through
  epoch ``t`` is ``(floor(log2 t) + 1)`` epoch budgets (the ``O(log T)``
  bound the ledger's :meth:`~repro.serving.BudgetLedger.charge_epoch`
  enforces);
* summing the cover structures' noisy counts per pattern is post-processing
  — free, and deterministic, so the combined release's digest is stable
  under replay with the same seed (each interval build inherits the
  bit-identical array/object backend guarantees of the plain ``heavy-path``
  kind).
"""

from __future__ import annotations

from typing import MutableMapping

import numpy as np

from repro.api.stream import CorpusStream
from repro.core.params import ConstructionParams
from repro.core.private_trie import PrivateCountingTrie, StructureMetadata
from repro.dp.composition import ContinualAccountant
from repro.exceptions import ReproError
from repro.strings.trie import Trie

__all__ = ["build_continual_structure", "continual_interval_structures"]

#: cache key of one per-interval structure.
IntervalKey = tuple[int, int]


def _interval_rng(seed: int, lo: int, hi: int) -> np.random.Generator:
    """The deterministic RNG of interval ``[lo, hi)`` — a pure function of
    ``(seed, lo, hi)``, so any interval rebuilt in any epoch (or any replay)
    draws identical noise."""
    return np.random.default_rng([int(seed), int(lo), int(hi)])


def continual_interval_structures(
    stream: CorpusStream,
    params: ConstructionParams,
    *,
    epoch: int,
    seed: int = 0,
    base_kind: str = "heavy-path",
    registry=None,
    cache: "MutableMapping[IntervalKey, PrivateCountingTrie] | None" = None,
    **kwargs,
) -> list[tuple[IntervalKey, PrivateCountingTrie]]:
    """One private structure per interval of epoch ``epoch``'s canonical
    cover, in cover (left-to-right) order.

    ``cache`` maps interval keys to already-built structures; missing
    intervals are built and inserted, so an :class:`EpochScheduler` that
    keeps one cache across epochs runs exactly one fresh build per epoch.
    The cache must be used with one fixed ``(params, seed, base_kind)`` —
    the determinism story keys intervals by bounds alone.
    """
    if registry is None:
        from repro.api.registry import default_registry

        registry = default_registry()
    if base_kind == "heavy-path-continual":
        raise ReproError("the continual kind cannot recurse into itself")
    if epoch > stream.num_epochs:
        raise ReproError(
            f"epoch {epoch} not yet in stream {stream.name!r} "
            f"({stream.num_epochs} epoch(s) appended)"
        )
    from repro.dp.prefix_sums import canonical_cover

    structures: list[tuple[IntervalKey, PrivateCountingTrie]] = []
    for lo, hi in canonical_cover(epoch, epoch):
        key = (lo, hi)
        structure = cache.get(key) if cache is not None else None
        if structure is None:
            structure = registry.build(
                base_kind,
                stream.database_for(lo, hi),
                params,
                rng=_interval_rng(seed, lo, hi),
                **kwargs,
            )
            if cache is not None:
                cache[key] = structure
        structures.append((key, structure))
    return structures


def build_continual_structure(
    stream: CorpusStream,
    params: ConstructionParams,
    *,
    epoch: int | None = None,
    seed: int = 0,
    base_kind: str = "heavy-path",
    registry=None,
    cache: "MutableMapping[IntervalKey, PrivateCountingTrie] | None" = None,
    **kwargs,
) -> PrivateCountingTrie:
    """The combined release after ``epoch`` epochs of ``stream``.

    ``epoch`` defaults to the stream's latest.  The result is an ordinary
    :class:`PrivateCountingTrie` — it stores every pattern present in any
    cover structure with the *sum* of its per-interval noisy counts (a
    pattern pruned from an interval contributes zero), so it releases
    through the same stores, servers and clusters as any single-shot
    structure.  Its metadata records the *cumulative* tree-schedule budget
    ``levels_used(epoch) * params.budget``, not the single-interval budget.
    """
    if epoch is None:
        epoch = stream.num_epochs
    if epoch < 1:
        raise ReproError("a continual release needs at least one epoch")
    structures = continual_interval_structures(
        stream,
        params,
        epoch=epoch,
        seed=seed,
        base_kind=base_kind,
        registry=registry,
        cache=cache,
        **kwargs,
    )
    combined: dict[str, float] = {}
    root_count: float | None = None
    error_bound = 0.0
    threshold = 0.0
    interval_digests: dict[str, str] = {}
    for (lo, hi), structure in structures:
        for pattern, count in structure.items():
            combined[pattern] = combined.get(pattern, 0.0) + count
        root = structure.trie.root.noisy_count
        if root is not None:
            root_count = (root_count or 0.0) + float(root)
        error_bound += structure.metadata.error_bound
        threshold = max(threshold, structure.metadata.threshold)
        interval_digests[f"{lo}:{hi}"] = structure.content_digest()
    template = structures[0][1].metadata
    levels = ContinualAccountant.levels_used(epoch)
    metadata = StructureMetadata(
        epsilon=levels * params.budget.epsilon,
        delta=levels * params.budget.delta,
        beta=template.beta,
        delta_cap=template.delta_cap,
        max_length=template.max_length,
        num_documents=sum(
            s.metadata.num_documents for _, s in structures
        ),
        alphabet_size=template.alphabet_size,
        error_bound=error_bound,
        threshold=threshold,
        qgram_length=template.qgram_length,
        construction=(
            f"heavy-path-continual epoch {epoch} "
            f"({len(structures)} dyadic interval(s), base {base_kind})"
        ),
        count_backend=template.count_backend,
    )
    trie = Trie()
    for pattern in sorted(combined):
        node = trie.insert(pattern)
        node.noisy_count = combined[pattern]
    if root_count is not None:
        trie.root.noisy_count = root_count
    report = {
        "epoch": epoch,
        "cover": [[lo, hi] for (lo, hi), _ in structures],
        "levels_used": levels,
        "epoch_epsilon": params.budget.epsilon,
        "epoch_delta": params.budget.delta,
        "interval_digests": interval_digests,
    }
    return PrivateCountingTrie(trie=trie, metadata=metadata, report=report)


def _build_heavy_path_continual(
    database,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    stream: CorpusStream,
    epoch: int | None = None,
    seed: int = 0,
    cache: "MutableMapping[IntervalKey, PrivateCountingTrie] | None" = None,
    registry=None,
    **kwargs,
) -> PrivateCountingTrie:
    """Registry builder for the ``heavy-path-continual`` kind.

    The ``database`` positional of the builder contract is ignored — the
    stream is the data source — and so is ``rng``: interval noise must be a
    pure function of ``(seed, interval)`` or rebuilding an interval in a
    later epoch (or a replay) would draw different noise and break digest
    stability, so the kind takes an integer ``seed`` instead of a generator.
    """
    del database, rng
    return build_continual_structure(
        stream,
        params,
        epoch=epoch,
        seed=seed,
        registry=registry,
        cache=cache,
        **kwargs,
    )
