"""The unified public API: one façade over every counting structure.

The package's canonical surface (see ``docs/API.md``) has three parts:

:class:`PrivateCounter`
    The protocol every structure kind satisfies — ``query``, vectorized
    ``query_many``, ``mine``, ``metadata`` and the ``to_payload`` /
    ``from_payload`` release round-trip.
:class:`StructureRegistry`
    Kind names (``"heavy-path"``, ``"qgram-t3"``, ``"qgram-t4"``,
    ``"baseline"``, ``"heavy-path-continual"``) mapped to builders;
    :func:`register_structure_kind` adds
    new scenarios without touching core, after which the fluent builder, the
    serving layer and the ``dpsc --kind`` flags all accept them.
:class:`Dataset`
    The fluent entry point:
    ``Dataset.from_documents(...).with_budget(...).build(kind=...)`` gives a
    counter, and ``counter.release(store)`` publishes it.

The pre-existing ``build_theorem*`` / ``build_qgram*`` functions remain as
thin deprecation shims over exactly this machinery.
"""

from repro.api.continual import build_continual_structure
from repro.api.dataset import Dataset
from repro.api.protocol import PrivateCounter
from repro.api.registry import (
    StructureKind,
    StructureRegistry,
    default_registry,
    register_structure_kind,
)
from repro.api.stream import CorpusStream

__all__ = [
    "CorpusStream",
    "Dataset",
    "PrivateCounter",
    "StructureKind",
    "StructureRegistry",
    "build_continual_structure",
    "default_registry",
    "register_structure_kind",
]
