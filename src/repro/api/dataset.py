"""The fluent entry point: documents -> budget -> counter -> release.

:class:`Dataset` is the one-stop public way to build any registered
structure kind::

    from repro import Dataset
    from repro.serving import ReleaseStore

    counter = (
        Dataset.from_documents(["GATTACA", "ACGTACGT", ...])
        .with_budget(epsilon=20.0)
        .build("heavy-path")
    )
    counter.query("ACG")                 # noisy count, post-processing
    counter.query_many(["ACG", "GAT"])   # vectorized batch
    counter.release(ReleaseStore("./rel"), "genome")

Each ``with_*`` method returns a **new** dataset (the object is immutable),
so partially configured datasets can be shared and forked freely.  Attaching
a :class:`~repro.serving.BudgetLedger` with :meth:`with_ledger` routes every
build through :func:`repro.serving.build_release`, which refuses — before
touching the data — any build whose budget no longer fits under the ledger's
global cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.api.protocol import PrivateCounter
from repro.api.registry import StructureRegistry, default_registry
from repro.api.stream import CorpusStream
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.dp.composition import PrivacyBudget
from repro.exceptions import PrivacyParameterError
from repro.strings.alphabet import Alphabet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.ledger import BudgetLedger

__all__ = ["Dataset"]

#: Kind built when :meth:`Dataset.build` is called without one.
DEFAULT_KIND = "heavy-path"


@dataclass(frozen=True)
class Dataset:
    """An immutable (database, construction parameters) pair with a fluent
    builder interface over the structure-kind registry."""

    database: StringDatabase
    params: ConstructionParams = field(
        default_factory=lambda: ConstructionParams.pure(1.0)
    )
    registry: StructureRegistry = field(default_factory=default_registry)
    ledger: "BudgetLedger | None" = None
    ledger_database_id: str | None = None
    ledger_label: str = "release"
    #: the append-only stream behind a continual dataset (None for the
    #: single-shot case); build() forwards it to kinds that require one.
    stream: CorpusStream | None = None
    #: privacy budgets are never implicit: set by with_budget/with_params,
    #: checked by build().
    budget_configured: bool = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_documents(
        cls,
        documents: Sequence[str],
        *,
        alphabet: Alphabet | None = None,
        max_length: int | None = None,
    ) -> "Dataset":
        """Wrap raw documents (see :class:`~repro.core.database.StringDatabase`
        for the alphabet / declared-length contract)."""
        return cls(StringDatabase(documents, alphabet, max_length))

    @classmethod
    def from_database(cls, database: StringDatabase) -> "Dataset":
        """Wrap an existing :class:`~repro.core.database.StringDatabase`."""
        return cls(database)

    @classmethod
    def from_stream(cls, stream: CorpusStream) -> "Dataset":
        """Wrap an append-only :class:`~repro.api.CorpusStream`.

        ``build("heavy-path-continual")`` then releases the stream's latest
        epoch under the tree schedule without the ``stream=`` keyword; the
        stream must already hold at least one epoch (the single-shot kinds
        see a snapshot of every document appended so far).
        """
        return cls(stream.full_database(), stream=stream)

    # ------------------------------------------------------------------
    # Fluent configuration (each returns a new Dataset)
    # ------------------------------------------------------------------
    def with_budget(self, epsilon: float, delta: float = 0.0) -> "Dataset":
        """Set the ``(epsilon, delta)`` privacy budget (``delta = 0`` selects
        the pure-DP constructions)."""
        return replace(
            self,
            params=replace(self.params, budget=PrivacyBudget(epsilon, delta)),
            budget_configured=True,
        )

    def with_beta(self, beta: float) -> "Dataset":
        """Set the failure probability of the accuracy guarantee."""
        return replace(self, params=replace(self.params, beta=beta))

    def with_contribution_cap(self, delta_cap: int | None) -> "Dataset":
        """Set the cap ``Delta`` of ``count_Delta`` (``1`` = Document Count,
        ``None`` = Substring Count)."""
        return replace(self, params=replace(self.params, delta_cap=delta_cap))

    def with_threshold(self, threshold: float | None) -> "Dataset":
        """Override the pruning / candidate threshold (post-processing;
        affects accuracy only, never privacy)."""
        return replace(self, params=replace(self.params, threshold=threshold))

    def with_count_backend(self, backend: str) -> "Dataset":
        """Select the :mod:`repro.counting` engine (speed only; see
        docs/ARCHITECTURE.md)."""
        return replace(self, params=replace(self.params, count_backend=backend))

    def with_build_backend(self, backend: str) -> "Dataset":
        """Select the construction pipeline: ``"array"`` (the numpy fast
        path ``"auto"`` resolves to) or ``"object"`` (the linked-node
        reference).  Bit-identical structures either way — same noisy
        counts, same digests — so this is speed only; see
        docs/PERFORMANCE.md."""
        return replace(self, params=replace(self.params, build_backend=backend))

    def noiseless(self, enabled: bool = True) -> "Dataset":
        """Run constructions without noise — **not private**; for tests and
        the paper's illustrative figures."""
        return replace(self, params=replace(self.params, noiseless=enabled))

    def with_params(self, params: ConstructionParams) -> "Dataset":
        """Replace the construction parameters wholesale (the explicit
        budget they carry counts as configuring the budget)."""
        return replace(self, params=params, budget_configured=True)

    def with_registry(self, registry: StructureRegistry) -> "Dataset":
        """Build kinds from a custom registry instead of the default one."""
        return replace(self, registry=registry)

    def with_ledger(
        self,
        ledger: "BudgetLedger",
        database_id: str | None = None,
        *,
        label: str = "release",
    ) -> "Dataset":
        """Route builds through the ledger's cumulative budget accounting.

        ``database_id`` names this dataset in the ledger (defaults to
        ``"default"``); every successful build charges its budget there and
        an unaffordable build is refused before touching the documents.
        """
        return replace(
            self,
            ledger=ledger,
            ledger_database_id=database_id,
            ledger_label=label,
        )

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def build(
        self,
        kind: str = DEFAULT_KIND,
        *,
        rng: np.random.Generator | None = None,
        **kwargs,
    ) -> PrivateCounter:
        """Build a counter of the registered ``kind``.

        ``kwargs`` go to the kind's builder (e.g. ``q=4`` for the q-gram
        kinds, ``candidate_set=...`` for ablations).  This is the only
        dataset operation that touches the documents and therefore the only
        one that spends privacy budget — which is why the budget must have
        been set explicitly (a forgotten ``with_budget`` must not silently
        spend a default).
        """
        if not self.budget_configured:
            raise PrivacyParameterError(
                "no privacy budget configured for this dataset; call "
                ".with_budget(epsilon, delta) (or .with_params(...)) before "
                ".build() — budgets are never spent implicitly"
            )
        if (
            self.stream is not None
            and "stream" not in kwargs
            and "stream" in self.registry.get(kind).requires
        ):
            kwargs["stream"] = self.stream
        if self.ledger is not None:
            from repro.serving.ledger import build_release

            return build_release(
                self.database,
                self.params,
                ledger=self.ledger,
                database_id=self.ledger_database_id or "default",
                label=self.ledger_label,
                rng=rng,
                kind=kind,
                registry=self.registry,
                **kwargs,
            )
        return self.registry.build(
            kind, self.database, self.params, rng=rng, **kwargs
        )
