"""The structure-kind registry: kind names to counter builders.

Every private counting construction is registered under a short kind name,
so serving, the CLI, experiments — and downstream scenarios the repository
has never heard of — can build any structure through one dispatch point
instead of importing construction modules:

===============  =====================================================
kind             construction
===============  =====================================================
``heavy-path``   Theorems 1-2: candidate doubling + heavy-path trie
                 (pure or approximate DP, selected by the budget)
``qgram-t3``     Theorem 3: pure-DP fixed-length q-grams (needs ``q``)
``qgram-t4``     Theorem 4: approximate-DP q-grams via the suffix tree
                 (needs ``q`` and ``delta > 0``)
``baseline``     the simple top-down noisy trie of the technical
                 overview (the ``Omega(ell^2)``-error comparison point)
``heavy-path-``  continual release over an append-only
``continual``    :class:`~repro.api.CorpusStream`: one ``heavy-path``
                 build per dyadic interval of the epoch's canonical
                 cover, combined by summation (needs ``stream``)
===============  =====================================================

A builder is any callable ``(database, params, *, rng=None, **kwargs) ->
PrivateCounter``.  New scenarios plug in without touching core::

    from repro.api import register_structure_kind

    def build_my_structure(database, params, *, rng=None, **kwargs):
        ...
        return structure  # any PrivateCounter

    register_structure_kind("my-kind", build_my_structure,
                            description="what it answers")

after which ``Dataset...build("my-kind")``, ``build_release(kind="my-kind")``
and ``dpsc releases --build ... --kind my-kind`` all work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.api.protocol import PrivateCounter
from repro.core.baselines import build_simple_trie_baseline
from repro.core.construction import build_private_counting_structure
from repro.core.database import StringDatabase
from repro.core.params import ConstructionParams
from repro.core.qgram_structure import (
    theorem3_qgram_structure,
    theorem4_qgram_structure,
)
from repro.exceptions import ReproError, UnknownStructureKindError

__all__ = [
    "StructureBuilder",
    "StructureKind",
    "StructureRegistry",
    "default_registry",
    "register_structure_kind",
]

#: Signature every registered builder satisfies.
StructureBuilder = Callable[..., PrivateCounter]


@dataclass(frozen=True)
class StructureKind:
    """One registered structure kind."""

    name: str
    builder: StructureBuilder
    #: one-line description shown by ``dpsc`` and :meth:`StructureRegistry.describe`.
    description: str = ""
    #: keyword arguments :meth:`StructureRegistry.build` requires (e.g. ``q``).
    requires: tuple[str, ...] = field(default=())


class StructureRegistry:
    """A mapping from kind names to :class:`StructureKind` entries.

    The module-level :func:`default_registry` instance carries the paper's
    four kinds; scenarios that need an isolated namespace (tests, plug-in
    experiments) can instantiate their own.
    """

    def __init__(self) -> None:
        self._kinds: dict[str, StructureKind] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        builder: StructureBuilder,
        *,
        description: str = "",
        requires: tuple[str, ...] = (),
        overwrite: bool = False,
    ) -> StructureKind:
        """Register ``builder`` under ``name`` and return the entry.

        Re-registering an existing name raises unless ``overwrite=True`` —
        silently replacing a construction behind a served kind name is the
        kind of surprise a privacy library should refuse.
        """
        if not name or not name.strip():
            raise ReproError("a structure kind needs a non-empty name")
        if name in self._kinds and not overwrite:
            raise ReproError(
                f"structure kind {name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        kind = StructureKind(
            name=name,
            builder=builder,
            description=description,
            requires=tuple(requires),
        )
        self._kinds[name] = kind
        return kind

    def unregister(self, name: str) -> None:
        """Remove a kind (mainly for tests tearing down custom kinds)."""
        self._kinds.pop(name, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> StructureKind:
        try:
            return self._kinds[name]
        except KeyError:
            raise UnknownStructureKindError(
                f"unknown structure kind {name!r}; registered kinds: "
                f"{', '.join(self.kinds()) or '(none)'}"
            ) from None

    def kinds(self) -> list[str]:
        """Registered kind names, in registration order."""
        return list(self._kinds)

    def describe(self) -> list[dict]:
        """JSON-friendly view of every kind (name, description, requires)."""
        return [
            {
                "kind": kind.name,
                "description": kind.description,
                "requires": list(kind.requires),
            }
            for kind in self._kinds.values()
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._kinds

    def __iter__(self) -> Iterator[StructureKind]:
        return iter(self._kinds.values())

    def __len__(self) -> int:
        return len(self._kinds)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def build(
        self,
        kind: str,
        database: StringDatabase,
        params: ConstructionParams,
        *,
        rng: np.random.Generator | None = None,
        **kwargs,
    ) -> PrivateCounter:
        """Build a counter of the given kind.

        ``kwargs`` are forwarded to the kind's builder; missing required
        keywords (e.g. ``q`` for the q-gram kinds) are reported up front
        with the kind's name rather than as a bare ``TypeError`` from deep
        inside a construction.
        """
        entry = self.get(kind)
        missing = [key for key in entry.requires if key not in kwargs]
        if missing:
            raise ReproError(
                f"structure kind {kind!r} requires keyword argument(s) "
                f"{', '.join(repr(key) for key in missing)}"
            )
        return entry.builder(database, params, rng=rng, **kwargs)


# ----------------------------------------------------------------------
# The default registry and the paper's four kinds.
# ----------------------------------------------------------------------
def _build_heavy_path(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> PrivateCounter:
    return build_private_counting_structure(database, params, rng=rng, **kwargs)


def _build_qgram_t3(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    q: int,
    **kwargs,
) -> PrivateCounter:
    return theorem3_qgram_structure(database, q, params, rng=rng, **kwargs)


def _build_qgram_t4(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    q: int,
    **kwargs,
) -> PrivateCounter:
    return theorem4_qgram_structure(database, q, params, rng=rng, **kwargs)


def _build_baseline(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> PrivateCounter:
    return build_simple_trie_baseline(database, params, rng=rng, **kwargs)


_DEFAULT_REGISTRY = StructureRegistry()
_DEFAULT_REGISTRY.register(
    "heavy-path",
    _build_heavy_path,
    description=(
        "Theorems 1-2: candidate doubling + heavy-path trie over all "
        "pattern lengths (pure or approximate DP, chosen by the budget)"
    ),
)
_DEFAULT_REGISTRY.register(
    "qgram-t3",
    _build_qgram_t3,
    description="Theorem 3: pure-DP fixed-length q-gram counts",
    requires=("q",),
)
_DEFAULT_REGISTRY.register(
    "qgram-t4",
    _build_qgram_t4,
    description=(
        "Theorem 4: approximate-DP q-gram counts via the suffix tree "
        "(near-linear construction; needs delta > 0)"
    ),
    requires=("q",),
)
_DEFAULT_REGISTRY.register(
    "baseline",
    _build_baseline,
    description=(
        "simple top-down noisy trie (technical overview; Omega(ell^2) error "
        "comparison point)"
    ),
)


def _build_continual(
    database: StringDatabase,
    params: ConstructionParams,
    *,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> PrivateCounter:
    # Imported lazily: the continual module pulls in the dp schedule and the
    # stream abstraction, which plain single-shot builds never need.
    from repro.api.continual import _build_heavy_path_continual

    return _build_heavy_path_continual(database, params, rng=rng, **kwargs)


_DEFAULT_REGISTRY.register(
    "heavy-path-continual",
    _build_continual,
    description=(
        "continual release over an append-only CorpusStream: one heavy-path "
        "build per dyadic interval of the epoch's canonical cover, combined "
        "by summation under the O(log T) tree schedule"
    ),
    requires=("stream",),
)


def default_registry() -> StructureRegistry:
    """The process-wide registry holding the paper's four kinds (plus any
    kinds registered through :func:`register_structure_kind`)."""
    return _DEFAULT_REGISTRY


def register_structure_kind(
    name: str,
    builder: StructureBuilder,
    *,
    description: str = "",
    requires: tuple[str, ...] = (),
    overwrite: bool = False,
) -> StructureKind:
    """Register a new kind in the default registry (see the module docstring
    for the builder contract and an end-to-end example)."""
    return _DEFAULT_REGISTRY.register(
        name,
        builder,
        description=description,
        requires=requires,
        overwrite=overwrite,
    )
