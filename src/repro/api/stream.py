"""Append-only corpora: documents arriving in epochs.

:class:`CorpusStream` is the streaming counterpart of
:class:`~repro.core.database.StringDatabase`: documents arrive in numbered
*epochs* (1, 2, 3, ...) and, once appended, are immutable — the continual
release pipeline (``heavy-path-continual``,
:class:`~repro.serving.schedule.EpochScheduler`) re-releases the growing
corpus after every epoch while the dyadic-tree schedule of
:class:`~repro.dp.ContinualAccountant` keeps the cumulative privacy cost at
``O(log T)``.

The alphabet and the maximum document length are *public* parameters (the
same contract as :class:`StringDatabase`); they are fixed when the stream is
created — or frozen from the first epoch when omitted — so every per-interval
build over any slice of the stream sees identical public metadata, which is
what keeps release digests stable under replay.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.core.database import StringDatabase
from repro.exceptions import InvalidDocumentError, ReproError
from repro.strings.alphabet import Alphabet, infer_alphabet

__all__ = ["CorpusStream"]


class CorpusStream:
    """An append-only stream of document epochs.

    Parameters
    ----------
    alphabet:
        Public alphabet of the data universe.  Inferred from (and frozen
        at) the first appended epoch when omitted; later epochs must stay
        inside it.
    max_length:
        Public bound ``ell`` on the document length.  Defaults to the
        longest document of the first epoch, then stays fixed.
    name:
        A label for error messages and scheduler status output.

    Dyadic slicing
    --------------
    Epoch ``t`` occupies the half-open slot ``[t - 1, t)`` on the schedule's
    time axis, so the dyadic interval ``[lo, hi)`` of
    :func:`~repro.dp.prefix_sums.canonical_cover` holds the documents of
    epochs ``lo + 1 .. hi`` — exactly what :meth:`database_for` returns.
    """

    def __init__(
        self,
        *,
        alphabet: Alphabet | None = None,
        max_length: int | None = None,
        name: str = "stream",
    ) -> None:
        self.name = name
        self._alphabet = alphabet
        self._max_length = max_length
        self._epochs: list[tuple[str, ...]] = []
        self._lock = threading.Lock()

    @classmethod
    def from_epochs(
        cls,
        epochs: Iterable[Sequence[str]],
        *,
        alphabet: Alphabet | None = None,
        max_length: int | None = None,
        name: str = "stream",
    ) -> "CorpusStream":
        """A stream pre-populated with the given document batches."""
        stream = cls(alphabet=alphabet, max_length=max_length, name=name)
        for documents in epochs:
            stream.append_epoch(documents)
        return stream

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_epoch(self, documents: Sequence[str]) -> int:
        """Append one epoch of documents and return its 1-based number.

        Epochs must be non-empty (an empty dyadic interval has no database
        to build over); documents are validated against the stream's public
        alphabet and length bound, which freeze at the first epoch.
        """
        documents = tuple(documents)
        if not documents:
            raise InvalidDocumentError(
                f"stream {self.name!r}: an epoch must contain at least one document"
            )
        with self._lock:
            if self._alphabet is None:
                self._alphabet = infer_alphabet(documents)
            if self._max_length is None:
                self._max_length = max(len(document) for document in documents)
            for document in documents:
                self._alphabet.validate_document(document, self._max_length)
            self._epochs.append(documents)
            return len(self._epochs)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        with self._lock:
            return len(self._epochs)

    @property
    def alphabet(self) -> Alphabet | None:
        """The public alphabet (``None`` until the first epoch fixes it)."""
        return self._alphabet

    @property
    def max_length(self) -> int | None:
        """The public length bound (``None`` until the first epoch fixes it)."""
        return self._max_length

    @property
    def num_documents(self) -> int:
        with self._lock:
            return sum(len(epoch) for epoch in self._epochs)

    def epoch_documents(self, epoch: int) -> tuple[str, ...]:
        """The documents that arrived in 1-based ``epoch``."""
        with self._lock:
            if not 1 <= epoch <= len(self._epochs):
                raise ReproError(
                    f"stream {self.name!r} has {len(self._epochs)} epoch(s); "
                    f"no epoch {epoch}"
                )
            return self._epochs[epoch - 1]

    def documents_in(self, lo: int, hi: int) -> list[str]:
        """Documents of the dyadic interval ``[lo, hi)`` — epochs
        ``lo + 1 .. hi`` — in arrival order."""
        with self._lock:
            if not 0 <= lo < hi <= len(self._epochs):
                raise ReproError(
                    f"interval [{lo}, {hi}) outside stream {self.name!r} "
                    f"with {len(self._epochs)} epoch(s)"
                )
            return [
                document
                for epoch in self._epochs[lo:hi]
                for document in epoch
            ]

    def database_for(self, lo: int, hi: int) -> StringDatabase:
        """A :class:`StringDatabase` over the interval ``[lo, hi)``, sharing
        the stream's public alphabet and length bound so every interval
        build sees identical public metadata."""
        return StringDatabase(
            self.documents_in(lo, hi), self._alphabet, self._max_length
        )

    def full_database(self) -> StringDatabase:
        """Every document appended so far, as one database."""
        with self._lock:
            count = len(self._epochs)
        if count == 0:
            raise ReproError(f"stream {self.name!r} holds no epochs yet")
        return self.database_for(0, count)

    def __len__(self) -> int:
        return self.num_epochs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CorpusStream(name={self.name!r}, epochs={self.num_epochs}, "
            f"documents={self.num_documents})"
        )
