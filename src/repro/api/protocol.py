"""The :class:`PrivateCounter` protocol — one query surface for every kind.

The paper gives four constructions (the heavy-path trie of Theorems 1-2, the
two q-gram structures of Theorems 3-4) plus baselines, and all of them answer
the same question: a noisy ``count_Delta(pattern)``.  This module pins down
the contract they share, so serving, experiments and the CLI can treat any
structure — current or future — uniformly:

``query(pattern)``
    One pattern's noisy count (0.0 when absent).  Post-processing.
``query_many(patterns)``
    The whole batch vectorized, bit-for-bit equal to the per-pattern loop
    but backed by numpy / the compiled-trie machinery.
``mine(threshold, ...)``
    alpha-approximate frequent-pattern mining (Definition 2), any number of
    times at any thresholds, with no further privacy cost.
``metadata``
    The public :class:`~repro.core.private_trie.StructureMetadata` — budget,
    error bound, threshold, construction name.
``to_payload()`` / ``from_payload(payload)``
    The JSON-serializable release form every kind round-trips through (the
    exact schema :class:`~repro.serving.ReleaseStore` persists).

Both :class:`~repro.core.private_trie.PrivateCountingTrie` (the construction
output, shared by all four kinds) and
:class:`~repro.serving.compiled.CompiledTrie` (the serving form) satisfy the
protocol; ``isinstance(obj, PrivateCounter)`` checks it at runtime.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.private_trie import StructureMetadata

__all__ = ["PrivateCounter"]


@runtime_checkable
class PrivateCounter(Protocol):
    """Anything that answers noisy pattern counts built under a DP budget.

    Every method is post-processing of the released noisy values: once a
    counter exists, querying, batching, mining and serializing it are free
    of further privacy cost.
    """

    @property
    def metadata(self) -> StructureMetadata:
        """Public metadata of the construction that produced the counter."""
        ...

    def query(self, pattern: str) -> float:
        """Noisy ``count_Delta(pattern, D)`` estimate (0.0 when absent)."""
        ...

    def query_many(self, patterns: Sequence[str]) -> np.ndarray:
        """Vectorized noisy counts, bit-for-bit equal to
        ``[self.query(p) for p in patterns]``."""
        ...

    def mine(
        self,
        threshold: float,
        *,
        min_length: int = 1,
        max_length: int | None = None,
        exact_length: int | None = None,
    ) -> list[tuple[str, float]]:
        """All stored patterns whose noisy count reaches ``threshold``."""
        ...

    def to_payload(self) -> dict:
        """The JSON-serializable release form (counts + public metadata)."""
        ...

    @classmethod
    def from_payload(cls, payload: dict) -> "PrivateCounter":
        """Rebuild a counter from :meth:`to_payload` output."""
        ...
